module Diag = Wcet_diag.Diag
module Json = Wcet_diag.Json
module Analyzer = Wcet_core.Analyzer
module Supergraph = Wcet_cfg.Supergraph
module Loops = Wcet_cfg.Loops
module Func_cfg = Wcet_cfg.Func_cfg
module Analysis = Wcet_value.Analysis
module Loop_bounds = Wcet_value.Loop_bounds
module Aval = Wcet_value.Aval
module State = Wcet_value.State
module Annot = Wcet_annot.Annot
module Program = Pred32_asm.Program
module Memory_map = Pred32_memory.Memory_map
module Region = Pred32_memory.Region
module Block_timing = Wcet_pipeline.Block_timing
module Ipet = Wcet_ipet.Ipet
module Reg = Pred32_isa.Reg
module Metrics = Wcet_obs.Metrics

type tier = Tier1 | Tier2

type grade = Analyzable | Needs_annotations | Unanalyzable

type finding = {
  code : string;
  tier : tier;
  severity : Diag.severity;
  func : string option;
  addr : int option;
  section : string;
  message : string;
  suggestion : string option;
  rules : string list;
}

type t = {
  findings : finding list;
  per_function : (string * grade) list;
  grade : grade;
  failure : Diag.t list;
}

let tier_name = function Tier1 -> "tier-1" | Tier2 -> "tier-2"

let grade_name = function
  | Analyzable -> "analyzable"
  | Needs_annotations -> "needs-annotations"
  | Unanalyzable -> "unanalyzable"

let all_finding_codes =
  [
    "A0501"; "A0502"; "A0503"; "A0504"; "A0505"; "A0506"; "A0507"; "A0508"; "A0509";
    "A0510"; "A0511"; "A0512"; "A0513";
  ]

(* One counter per finding code, registered at module initialization like
   every other obs metric; [wcet_tool metrics] and the pinned-name test see
   them whether or not an audit ever runs. *)
let finding_counters =
  List.map
    (fun code ->
      ( code,
        Metrics.counter ~labels:[ ("code", code) ] ~name:"audit_findings"
          ~help:"Analyzability-audit findings emitted, by finding code" () ))
    all_finding_codes

let count_finding f =
  match List.assoc_opt f.code finding_counters with
  | Some c -> Metrics.incr c 1
  | None -> ()

let section_of_code = function
  | "A0501" | "A0502" -> "section 3 (function pointers)"
  | "A0503" | "A0504" -> "section 3 (function pointers / indirect branching)"
  | "A0505" -> "section 3 (input-data-dependent loops)"
  | "A0506" -> "section 4.2 (rule 13.6: loop structure)"
  | "A0507" -> "section 3 (irreducible loops; rules 14.4/20.7)"
  | "A0508" -> "section 4.3 (operating modes)"
  | "A0509" -> "section 4.3 (imprecise memory accesses)"
  | "A0510" -> "section 4.3 (error handling)"
  | "A0511" -> "section 4.4 (software arithmetic)"
  | "A0512" -> "section 4.2 (rule 14.1: semantically unreachable code)"
  | "A0513" -> "section 4.2 (rule 16.2: recursion)"
  | _ -> "sections 3-4"

let tier_of_code = function
  | "A0508" | "A0509" | "A0510" | "A0511" | "A0512" -> Tier2
  | _ -> Tier1

let finding ?func ?addr ?suggestion ?(rules = []) severity code message =
  {
    code;
    tier = tier_of_code code;
    severity;
    func;
    addr;
    section = section_of_code code;
    message;
    suggestion;
    rules;
  }

let findingf ?func ?addr ?suggestion ?rules severity code fmt =
  Format.kasprintf (fun message -> finding ?func ?addr ?suggestion ?rules severity code message) fmt

(* --- helpers over the report --- *)

let is_runtime_func name =
  String.length name >= 2 && String.sub name 0 2 = "__"

let node_func (g : Supergraph.t) nid = g.Supergraph.nodes.(nid).Supergraph.func

let block_entry (g : Supergraph.t) nid =
  g.Supergraph.nodes.(nid).Supergraph.block.Func_cfg.entry

let terminator_addr (n : Supergraph.node) =
  let insns = n.Supergraph.block.Func_cfg.insns in
  fst insns.(Array.length insns - 1)

(* --- tier-1: indirect calls and jumps (Section 3, function pointers) --- *)

let audit_indirect_calls (r : Analyzer.report) (annot : Annot.t) =
  let g = r.Analyzer.graph in
  let unresolved = List.sort_uniq compare (List.map snd g.Supergraph.unresolved_calls) in
  (* Group the graph's indirect call sites: context expansion gives several
     nodes per physical site. *)
  let sites = Hashtbl.create 8 in
  Array.iter
    (fun (n : Supergraph.node) ->
      match n.Supergraph.block.Func_cfg.term with
      | Func_cfg.Term_call_indirect { site; _ } ->
        let targets =
          List.filter_map
            (function
              | Supergraph.Ecall, d -> Some (node_func g d)
              | _ -> None)
            n.Supergraph.succs
        in
        let prev = try Hashtbl.find sites site with Not_found -> (n.Supergraph.func, []) in
        Hashtbl.replace sites site (fst prev, List.sort_uniq compare (targets @ snd prev))
      | _ -> ())
    g.Supergraph.nodes;
  Hashtbl.fold
    (fun site (func, targets) acc ->
      if List.mem site unresolved then
        findingf ~func ~addr:site
          ~suggestion:(Printf.sprintf "calltargets at 0x%x = <function>, <function>" site)
          Diag.Warning "A0501"
          "indirect call cannot be resolved; the callee's cost is excluded from any bound"
        :: acc
      else
        let how =
          if List.mem_assoc site annot.Annot.call_targets then "calltargets annotation"
          else "value analysis"
        in
        findingf ~func ~addr:site Diag.Info "A0502"
          "indirect call resolved by %s (targets: %s)" how
          (String.concat ", " targets)
        :: acc)
    sites []

let audit_indirect_jumps (r : Analyzer.report) =
  let g = r.Analyzer.graph in
  let resolved = Hashtbl.create 4 in
  Array.iter
    (fun (n : Supergraph.node) ->
      match n.Supergraph.block.Func_cfg.term with
      | Func_cfg.Term_jump_indirect { site; _ }
        when not (List.mem site g.Supergraph.unresolved_jumps) ->
        let conts =
          List.filter_map
            (function Supergraph.Eindirect, d -> Some (block_entry g d) | _ -> None)
            n.Supergraph.succs
        in
        let prev = try Hashtbl.find resolved site with Not_found -> (n.Supergraph.func, []) in
        Hashtbl.replace resolved site (fst prev, List.sort_uniq compare (conts @ snd prev))
      | _ -> ())
    g.Supergraph.nodes;
  let unresolved =
    List.map
      (fun site ->
        let func =
          match Program.function_at r.Analyzer.program site with
          | Some f -> f.Program.name
          | None -> "?"
        in
        findingf ~func ~addr:site
          ~suggestion:"setjmp auto   # if the jump implements longjmp" Diag.Error "A0503"
          "indirect jump cannot be resolved: execution beyond it is outside any bound, and no \
           annotation supplies jump targets")
      (List.sort_uniq compare g.Supergraph.unresolved_jumps)
  in
  Hashtbl.fold
    (fun site (func, conts) acc ->
      findingf ~func ~addr:site Diag.Info "A0504"
        "indirect jump resolved to %d continuation(s): %s" (List.length conts)
        (String.concat ", " (List.map (Printf.sprintf "0x%x") conts))
      :: acc)
    resolved unresolved

(* --- tier-1: loop-bound provenance (input data vs. structure) --- *)

let audit_loops (r : Analyzer.report) =
  let g = r.Analyzer.graph in
  let loops = r.Analyzer.loops in
  let out = ref [] in
  Array.iteri
    (fun li verdict ->
      match verdict with
      | Loop_bounds.Bounded _ -> ()
      | Loop_bounds.Unbounded (cause, reason) ->
        let header = loops.Loops.loops.(li).Loops.header in
        if Analysis.reachable r.Analyzer.value header then begin
          let func = node_func g header in
          let addr = block_entry g header in
          (* [unbounded_loops] keeps exactly the loops left undischarged by
             annotations (the analyzer's W0302 holes). *)
          let open_hole = List.mem_assoc li r.Analyzer.unbounded_loops in
          let severity = if open_hole then Diag.Warning else Diag.Info in
          let suggestion =
            if open_hole then Some (Printf.sprintf "loop at 0x%x bound <N>" addr) else None
          in
          let discharged = if open_hole then "" else "; discharged by a loop-bound annotation" in
          match cause with
          | Loop_bounds.Unreachable_entry -> ()
          | Loop_bounds.Input_dependent ->
            out :=
              findingf ~func ~addr ?suggestion severity "A0505"
                "loop bound depends on unconstrained input data (%s)%s" reason discharged
              :: !out
          | Loop_bounds.Irregular_counter | Loop_bounds.Aliased_counter ->
            out :=
              findingf ~func ~addr ?suggestion ~rules:[ "13.6" ] severity "A0506"
                "loop structure defeats automatic bounding: %s%s" reason discharged
              :: !out
          | Loop_bounds.Structural ->
            out :=
              findingf ~func ~addr ?suggestion severity "A0506"
                "loop structure defeats automatic bounding: %s%s" reason discharged
              :: !out
        end)
    r.Analyzer.derived_bounds.Loop_bounds.per_loop;
  !out

(* --- tier-1: irreducible regions --- *)

let audit_irreducible (r : Analyzer.report) (annot : Annot.t) =
  let g = r.Analyzer.graph in
  List.map
    (fun scc ->
      let addrs = List.sort_uniq compare (List.map (block_entry g) scc) in
      let funcs = List.sort_uniq compare (List.map (node_func g) scc) in
      let covered =
        List.exists
          (function
            | Annot.Max_count (Annot.At_addr a, _) -> List.mem a addrs
            | Annot.Max_count (Annot.In_function f, _) -> List.mem f funcs
            | Annot.Exclusive _ -> false)
          annot.Annot.flow_facts
        || List.exists
             (function Annot.At_addr a, _ -> List.mem a addrs | _ -> false)
             annot.Annot.loop_bounds
      in
      let addr = List.hd addrs in
      let func = List.hd funcs in
      if covered then
        findingf ~func ~addr ~rules:[ "14.4"; "20.7" ] Diag.Info "A0507"
          "irreducible region (%d blocks) bounded by user flow facts" (List.length addrs)
      else
        findingf ~func ~addr
          ~suggestion:(Printf.sprintf "maxcount at 0x%x <= <passes>" addr)
          ~rules:[ "14.4"; "20.7" ] Diag.Error "A0507"
          "irreducible region (%d blocks: %s) has no automatic bound; without covering flow \
           facts the analysis is limited to one pass per block"
          (List.length addrs)
          (String.concat ", " (List.map (Printf.sprintf "0x%x") addrs)))
    r.Analyzer.loops.Loops.irreducible

(* --- tier-1: recursion in the binary call graph --- *)

let audit_recursion (r : Analyzer.report) (annot : Annot.t) =
  let g = r.Analyzer.graph in
  let program = r.Analyzer.program in
  let edges = Hashtbl.create 16 in
  Array.iter
    (fun (n : Supergraph.node) ->
      match n.Supergraph.block.Func_cfg.term with
      | Func_cfg.Term_call { target; _ } -> (
        match Program.function_at program target with
        | Some f ->
          let callees = try Hashtbl.find edges n.Supergraph.func with Not_found -> [] in
          if not (List.mem f.Program.name callees) then
            Hashtbl.replace edges n.Supergraph.func (f.Program.name :: callees)
        | None -> ())
      | _ -> ())
    g.Supergraph.nodes;
  let callees f = try Hashtbl.find edges f with Not_found -> [] in
  let can_reach_itself name =
    let visited = Hashtbl.create 16 in
    let rec go f =
      if not (Hashtbl.mem visited f) then begin
        Hashtbl.add visited f ();
        List.iter go (callees f)
      end
    in
    List.iter go (callees name);
    Hashtbl.mem visited name
  in
  let funcs = List.sort_uniq compare (Hashtbl.fold (fun f _ acc -> f :: acc) edges []) in
  List.filter_map
    (fun f ->
      if is_runtime_func f || not (can_reach_itself f) then None
      else
        let entry =
          match Program.find_function program f with
          | Some fi -> Some fi.Program.entry
          | None -> None
        in
        if List.mem_assoc f annot.Annot.recursion_depths then
          Some
            (findingf ~func:f ?addr:entry ~rules:[ "16.2" ] Diag.Info "A0513"
               "recursive function; depth bounded by annotation (virtual unrolling to depth %d)"
               (List.assoc f annot.Annot.recursion_depths))
        else
          Some
            (findingf ~func:f ?addr:entry
               ~suggestion:(Printf.sprintf "recursion %s depth <N>" f)
               ~rules:[ "16.2" ] Diag.Warning "A0513"
               "function can call itself (directly or indirectly); recursion needs a depth \
                annotation"))
    funcs

(* --- tier-2: operating-mode structure (Section 4.3) --- *)

(* A mode variable in the paper's sense: a global the program only ever
   reads, tested by conditional branches outside any loop — either at two or
   more sites, or at one site whose two sides dispatch to different callees
   (the flight-control/ground-control shape of Section 4.3). The value
   analysis records, per register, the memory word it was loaded from
   ([State.origins]); a branch whose operand originates at a never-written
   data symbol is a mode guard. *)
let audit_modes (r : Analyzer.report) (annot : Annot.t) =
  let g = r.Analyzer.graph in
  let v = r.Analyzer.value in
  let loops = r.Analyzer.loops in
  let program = r.Analyzer.program in
  let data_syms =
    List.filter
      (fun (_, a) ->
        a < program.Program.text_base || a >= program.Program.text_limit)
      program.Program.symbols
  in
  let sym_at a = List.find_opt (fun (_, sa) -> sa = a) data_syms in
  let stored addr =
    Array.exists
      (fun accs ->
        List.exists
          (fun (acc : Analysis.access) ->
            acc.Analysis.is_store
            &&
            match Aval.range acc.Analysis.addr with
            | Some (lo, hi) -> lo <= addr && addr <= hi && hi - lo < 4096
            | None -> false)
          accs)
      v.Analysis.accesses
  in
  (* Does the branch select between two different callees? The successor
     block on each side is inspected for the first direct call. *)
  let side_callee n kind =
    List.fold_left
      (fun acc (k, d) ->
        if acc <> None || k <> kind then acc
        else
          match g.Supergraph.nodes.(d).Supergraph.block.Func_cfg.term with
          | Func_cfg.Term_call { target; _ } -> (
            match Program.function_at program target with
            | Some f -> Some f.Program.name
            | None -> None)
          | _ -> None)
      None n.Supergraph.succs
  in
  let dispatches (n : Supergraph.node) =
    match (side_callee n Supergraph.Etaken, side_callee n Supergraph.Enottaken) with
    | Some a, Some b -> a <> b
    | _ -> false
  in
  let guards = Hashtbl.create 8 in
  Array.iter
    (fun (n : Supergraph.node) ->
      match n.Supergraph.block.Func_cfg.term with
      | Func_cfg.Term_branch { rs1; rs2; _ }
        when Loops.innermost_loop loops n.Supergraph.id = None -> (
        match v.Analysis.node_out.(n.Supergraph.id) with
        | None -> ()
        | Some st ->
          List.iter
            (fun rs ->
              match st.State.origins.(Reg.to_int rs) with
              | Some a -> (
                match sym_at a with
                | Some (name, saddr) when not (stored saddr) ->
                  let site = terminator_addr n in
                  let prev = try Hashtbl.find guards name with Not_found -> [] in
                  if not (List.mem_assoc site prev) then
                    Hashtbl.replace guards name ((site, (n.Supergraph.func, dispatches n)) :: prev)
                | _ -> ())
              | None -> ())
            [ rs1; rs2 ])
      | _ -> ())
    g.Supergraph.nodes;
  Hashtbl.fold
    (fun sym sites acc ->
      if List.length sites < 2 && not (List.exists (fun (_, (_, d)) -> d) sites) then acc
      else
        let sites = List.sort compare (List.map (fun (a, (f, _)) -> (a, f)) sites) in
        let addr, func = List.hd sites in
        let pinned =
          List.exists (fun (s, lo, hi) -> s = sym && lo = hi) annot.Annot.assumes
        in
        if pinned then
          findingf ~func ~addr Diag.Info "A0508"
            "operating-mode variable '%s' guards %d branch sites; mode pinned by an assume \
             annotation (per-mode analysis)"
            sym (List.length sites)
          :: acc
        else
          findingf ~func ~addr
            ~suggestion:(Printf.sprintf "assume %s = <mode>" sym)
            Diag.Warning "A0508"
            "operating-mode structure: never-written global '%s' guards %d branch sites \
             (0x%s); a mode-oblivious analysis sums mutually exclusive paths"
            sym (List.length sites)
            (String.concat ", 0x" (List.map (fun (a, _) -> Printf.sprintf "%x" a) sites))
          :: acc)
    guards []

(* --- tier-2: imprecise memory accesses --- *)

let audit_memory (r : Analyzer.report) (annot : Annot.t) =
  let v = r.Analyzer.value in
  let program = r.Analyzer.program in
  let map = program.Program.map in
  let data_regions =
    List.filter (fun (rg : Region.t) -> rg.Region.kind <> Region.Rom) (Memory_map.regions map)
  in
  let regions_hit = function
    | Aval.Top -> data_regions
    | Aval.Bot -> []
    | Aval.I (lo, hi) ->
      List.filter
        (fun (rg : Region.t) -> rg.Region.base <= hi && lo < Region.limit rg)
        (Memory_map.regions map)
  in
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun accs ->
      List.iter
        (fun (acc : Analysis.access) ->
          if not (Hashtbl.mem seen acc.Analysis.insn_addr) then
            let hit = regions_hit acc.Analysis.addr in
            if List.length hit >= 2 then begin
              let func =
                match Program.function_at program acc.Analysis.insn_addr with
                | Some f -> f.Program.name
                | None -> "?"
              in
              if not (is_runtime_func func) then
                Hashtbl.replace seen acc.Analysis.insn_addr
                  (func, acc.Analysis.is_store, acc.Analysis.addr, hit)
            end)
        accs)
    v.Analysis.accesses;
  Hashtbl.fold
    (fun insn_addr (func, is_store, aval, hit) acc ->
      let names = String.concat ", " (List.map (fun (rg : Region.t) -> rg.Region.name) hit) in
      let kind = if is_store then "store" else "load" in
      let ival =
        match aval with
        | Aval.Top -> "unknown (Top)"
        | Aval.I (lo, hi) -> Printf.sprintf "[0x%x, 0x%x]" lo hi
        | Aval.Bot -> "bottom"
      in
      let annotated = List.mem_assoc func annot.Annot.memory_regions in
      if annotated then
        findingf ~func ~addr:insn_addr Diag.Info "A0509"
          "imprecise %s address %s narrowed by a memory annotation" kind ival
        :: acc
      else
        findingf ~func ~addr:insn_addr
          ~suggestion:(Printf.sprintf "memory %s = <region>" func)
          Diag.Warning "A0509"
          "imprecise %s: address interval %s spans %d memory regions (%s); the access is \
           charged the slowest candidate latency"
          kind ival (List.length hit) names
        :: acc)
    seen []

(* --- tier-2: error handling on the critical path --- *)

let audit_error_handling (r : Analyzer.report) (annot : Annot.t) coverage =
  let g = r.Analyzer.graph in
  let counts = r.Analyzer.solution.Ipet.node_counts in
  let times = r.Analyzer.timing.Block_timing.wcet in
  let total = max 1 r.Analyzer.wcet in
  let contrib = Hashtbl.create 8 in
  Array.iteri
    (fun i (n : Supergraph.node) ->
      if
        i < Array.length counts
        && counts.(i) > 0
        && (not (is_runtime_func n.Supergraph.func))
        && coverage n.Supergraph.block.Func_cfg.entry = 0
      then begin
        let cycles, addrs =
          try Hashtbl.find contrib n.Supergraph.func with Not_found -> (0, [])
        in
        Hashtbl.replace contrib n.Supergraph.func
          ( cycles + (counts.(i) * times.(i)),
            if List.mem n.Supergraph.block.Func_cfg.entry addrs then addrs
            else n.Supergraph.block.Func_cfg.entry :: addrs )
      end)
    g.Supergraph.nodes;
  Hashtbl.fold
    (fun func (cycles, addrs) acc ->
      let share = 100 * cycles / total in
      if share < 5 then acc
      else
        let addrs = List.sort compare addrs in
        let covered =
          List.exists
            (function
              | Annot.Max_count (Annot.In_function f, _) -> f = func
              | Annot.Max_count (Annot.At_addr a, _) -> List.mem a addrs
              | Annot.Exclusive _ -> false)
            annot.Annot.flow_facts
        in
        if covered then
          findingf ~func ~addr:(List.hd addrs) Diag.Info "A0510"
            "sim-unreached blocks contribute %d%% of the bound; execution counts limited by a \
             flow fact"
            share
          :: acc
        else
          findingf ~func ~addr:(List.hd addrs)
            ~suggestion:(Printf.sprintf "maxcount %s <= <count>" func)
            Diag.Warning "A0510"
            "%d block(s) on the worst-case path (%d%% of the bound) never executed in the \
             nominal simulation — likely error handling; a maxcount flow fact would tighten \
             the bound"
            (List.length addrs) share
          :: acc)
    contrib []

(* --- tier-2: software arithmetic (Section 4.4) --- *)

let soft_prefixes = [ "__udiv"; "__urem"; "__ediv"; "__f_" ]

let is_softarith name = List.exists (fun p -> String.length name >= String.length p && String.sub name 0 (String.length p) = p) soft_prefixes

let audit_softarith (r : Analyzer.report) =
  let g = r.Analyzer.graph in
  let loops = r.Analyzer.loops in
  let program = r.Analyzer.program in
  (* call sites into the runtime, grouped per callee *)
  let calls = Hashtbl.create 8 in
  Array.iter
    (fun (n : Supergraph.node) ->
      match n.Supergraph.block.Func_cfg.term with
      | Func_cfg.Term_call { target; _ } -> (
        match Program.function_at program target with
        | Some f when is_softarith f.Program.name && not (is_runtime_func n.Supergraph.func) ->
          let site = terminator_addr n in
          let prev = try Hashtbl.find calls f.Program.name with Not_found -> [] in
          if not (List.mem site prev) then Hashtbl.replace calls f.Program.name (site :: prev)
        | _ -> ())
      | _ -> ())
    g.Supergraph.nodes;
  (* iteration-bound status of the routine's loops, including the runtime
     helpers it calls (e.g. __udiv32 is a straight-line wrapper around the
     iterating __udivmod32) *)
  let runtime_callees = Hashtbl.create 8 in
  Array.iter
    (fun (n : Supergraph.node) ->
      if is_runtime_func n.Supergraph.func then
        match n.Supergraph.block.Func_cfg.term with
        | Func_cfg.Term_call { target; _ } -> (
          match Program.function_at program target with
          | Some f ->
            let prev =
              try Hashtbl.find runtime_callees n.Supergraph.func with Not_found -> []
            in
            if not (List.mem f.Program.name prev) then
              Hashtbl.replace runtime_callees n.Supergraph.func (f.Program.name :: prev)
          | None -> ())
        | _ -> ())
    g.Supergraph.nodes;
  let closure name =
    let seen = Hashtbl.create 8 in
    let rec go f =
      if not (Hashtbl.mem seen f) then begin
        Hashtbl.add seen f ();
        List.iter go (try Hashtbl.find runtime_callees f with Not_found -> [])
      end
    in
    go name;
    seen
  in
  let callee_loops name =
    let members = closure name in
    let out = ref [] in
    Array.iteri
      (fun li (l : Loops.loop) ->
        if Hashtbl.mem members (node_func g l.Loops.header) then out := li :: !out)
      loops.Loops.loops;
    !out
  in
  Hashtbl.fold
    (fun callee sites acc ->
      let rules = if String.length callee >= 4 && String.sub callee 0 4 = "__f_" then [ "13.4" ] else [] in
      let lis = callee_loops callee in
      let unbounded =
        List.filter (fun li -> List.mem_assoc li r.Analyzer.unbounded_loops) lis
      in
      let site = List.fold_left min max_int sites in
      if unbounded <> [] then
        let owner = node_func g loops.Loops.loops.(List.hd unbounded).Loops.header in
        findingf ~func:callee ~addr:site
          ~suggestion:(Printf.sprintf "loop in %s bound <N>" owner)
          ~rules Diag.Warning "A0511"
          "software-arithmetic routine called from %d site(s) has %d unbounded iteration \
           loop(s); its cost is excluded until annotated"
          (List.length sites) (List.length unbounded)
        :: acc
      else
        findingf ~func:callee ~addr:site ~rules Diag.Info "A0511"
          "software-arithmetic routine called from %d site(s); %s"
          (List.length sites)
          (if lis = [] then "straight-line (no iteration loops)"
           else Printf.sprintf "all %d iteration loop(s) bounded" (List.length lis))
        :: acc)
    calls []

(* --- tier-2: semantically unreachable code (rule 14.1's semantic variant) --- *)

let audit_unreachable (r : Analyzer.report) =
  let g = r.Analyzer.graph in
  let v = r.Analyzer.value in
  let program = r.Analyzer.program in
  (* Skip functions degraded by unresolved jumps: their tails are
     unreachable because of the hole, not provably dead code. *)
  let degraded_funcs =
    List.filter_map
      (fun site ->
        match Program.function_at program site with
        | Some f -> Some f.Program.name
        | None -> None)
      g.Supergraph.unresolved_jumps
  in
  (* A block is semantically unreachable only if no context reaches it. *)
  let status = Hashtbl.create 32 in
  Array.iter
    (fun (n : Supergraph.node) ->
      let key = (n.Supergraph.func, n.Supergraph.block.Func_cfg.entry) in
      let reached = v.Analysis.node_in.(n.Supergraph.id) <> None in
      let prev = try Hashtbl.find status key with Not_found -> false in
      Hashtbl.replace status key (prev || reached))
    g.Supergraph.nodes;
  let block_findings =
    Hashtbl.fold
      (fun (func, addr) reached acc ->
        if reached || is_runtime_func func || List.mem func degraded_funcs then acc
        else
          findingf ~func ~addr ~rules:[ "14.1" ] Diag.Info "A0512"
            "block is semantically unreachable: the value analysis proves no execution enters \
             it (infeasible path or excluded mode)"
          :: acc)
      status []
  in
  (* Edge-level variant: a conditional arm pruned by branch refinement in
     every context, between blocks that are otherwise live — the branch
     outcome is statically decided even though both blocks execute. *)
  let edge_status = Hashtbl.create 16 in
  Array.iter
    (fun (n : Supergraph.node) ->
      if v.Analysis.node_in.(n.Supergraph.id) <> None then begin
        let feasible = Analysis.feasible_successors v n.Supergraph.id in
        List.iter
          (fun (kind, tgt) ->
            match kind with
            | Supergraph.Etaken | Supergraph.Enottaken ->
              let tgt_live =
                try Hashtbl.find status (node_func g tgt, block_entry g tgt)
                with Not_found -> false
              in
              if tgt_live then begin
                let key = (n.Supergraph.func, terminator_addr n, kind = Supergraph.Etaken) in
                let live_edge = List.exists (fun (k, t) -> k = kind && t = tgt) feasible in
                let prev = try Hashtbl.find edge_status key with Not_found -> false in
                Hashtbl.replace edge_status key (prev || live_edge)
              end
            | _ -> ())
          n.Supergraph.succs
      end)
    g.Supergraph.nodes;
  let edge_findings =
    Hashtbl.fold
      (fun (func, addr, taken) live acc ->
        if live || is_runtime_func func || List.mem func degraded_funcs then acc
        else
          findingf ~func ~addr ~rules:[ "14.1" ] Diag.Info "A0512"
            "the %s arm of this branch is semantically infeasible: the value analysis proves \
             it is never followed"
            (if taken then "taken" else "fall-through")
          :: acc)
      edge_status []
  in
  edge_findings @ block_findings

(* --- octagon discharges: interval-pass findings the relational pass
   resolved. The refined report no longer produces the original A0505/A0509
   warnings at all; these Info findings record that they existed and what
   discharged them, so a precision gate can assert the discharge. --- *)

let audit_octagon_discharges (r : Analyzer.report) =
  match r.Analyzer.escalation with
  | None -> []
  | Some e ->
    let map = r.Analyzer.program.Program.map in
    let regions_spanned = function
      | Aval.Top ->
        List.length
          (List.filter
             (fun (rg : Region.t) -> rg.Region.kind <> Region.Rom)
             (Memory_map.regions map))
      | Aval.Bot -> 0
      | Aval.I (lo, hi) ->
        List.length
          (List.filter
             (fun (rg : Region.t) -> rg.Region.base <= hi && lo < Region.limit rg)
             (Memory_map.regions map))
    in
    let loop_findings =
      List.filter_map
        (fun (addr, func, cause) ->
          if is_runtime_func func then None
          else
            let code = if cause = "input-dependent" then "A0505" else "A0506" in
            Some
              (findingf ~func ~addr Diag.Info code
                 "loop bound was %s under the interval domain; discharged-by: octagon" cause))
        e.Analyzer.ei_discharged_loops
    in
    let access_findings =
      List.filter_map
        (fun (addr, func, before, after) ->
          if is_runtime_func func then None
          else if regions_spanned before >= 2 && regions_spanned after <= 1 then
            let pp_aval = function
              | Aval.Top -> "unknown (Top)"
              | Aval.I (lo, hi) -> Printf.sprintf "[0x%x, 0x%x]" lo hi
              | Aval.Bot -> "bottom"
            in
            Some
              (findingf ~func ~addr Diag.Info "A0509"
                 "access address narrowed from %s to %s by the relational pass; discharged-by: \
                  octagon"
                 (pp_aval before) (pp_aval after))
          else None)
        e.Analyzer.ei_tightened_accesses
    in
    loop_findings @ access_findings

(* --- MISRA bridging --- *)

let rule_code = function
  | Checker.R13_4 -> "M1304"
  | Checker.R13_6 -> "M1306"
  | Checker.R14_1 -> "M1401"
  | Checker.R14_4 -> "M1404"
  | Checker.R14_5 -> "M1405"
  | Checker.R16_1 -> "M1601"
  | Checker.R16_2 -> "M1602"
  | Checker.R20_4 -> "M2004"
  | Checker.R20_7 -> "M2007"

let violation_to_diag (v : Checker.violation) =
  Diag.makef Diag.Warning Diag.Audit ~code:(rule_code v.Checker.rule)
    ~loc:(Diag.in_func v.Checker.func)
    ~hint:(Checker.wcet_impact v.Checker.rule)
    "rule %s: %s"
    (Checker.rule_name v.Checker.rule)
    v.Checker.message

(* Cross-reference binary-level findings with source-level violations: a
   13.6 finding in [f] is confirmed when the checker also flagged 13.6 in
   [f] — the paper's point that the source rule predicts the binary-level
   analysis failure. *)
let crossref misra f =
  match misra with
  | [] -> f
  | vs ->
    let confirming =
      List.filter
        (fun (v : Checker.violation) ->
          List.mem (Checker.rule_name v.Checker.rule) f.rules
          && match f.func with Some fn -> fn = v.Checker.func | None -> true)
        vs
    in
    if confirming = [] then f
    else
      let rules =
        List.sort_uniq compare
          (List.map (fun (v : Checker.violation) -> Checker.rule_name v.Checker.rule) confirming)
      in
      {
        f with
        message =
          Printf.sprintf "%s [confirms source-level MISRA %s violation]" f.message
            (String.concat ", " rules);
      }

(* --- aggregation --- *)

let grade_of_findings fs =
  if List.exists (fun f -> f.severity = Diag.Error) fs then Unanalyzable
  else if List.exists (fun f -> f.severity = Diag.Warning) fs then Needs_annotations
  else Analyzable

let order_findings fs =
  List.sort
    (fun a b ->
      compare (a.code, a.addr, a.func, a.message) (b.code, b.addr, b.func, b.message))
    fs

let aggregate (g : Supergraph.t) findings failure =
  let funcs =
    Array.to_list g.Supergraph.nodes
    |> List.map (fun (n : Supergraph.node) -> n.Supergraph.func)
    |> List.filter (fun f -> not (is_runtime_func f))
    |> List.sort_uniq compare
  in
  let per_function =
    List.map
      (fun fn -> (fn, grade_of_findings (List.filter (fun f -> f.func = Some fn) findings)))
      funcs
  in
  let findings = order_findings findings in
  List.iter count_finding findings;
  { findings; per_function; grade = grade_of_findings findings; failure }

let of_report ?(misra = []) ?(annot = Annot.empty) ?coverage (r : Analyzer.report) =
  let findings =
    audit_indirect_calls r annot @ audit_indirect_jumps r @ audit_loops r
    @ audit_irreducible r annot @ audit_recursion r annot @ audit_modes r annot
    @ audit_memory r annot
    @ (match coverage with Some c -> audit_error_handling r annot c | None -> [])
    @ audit_softarith r @ audit_unreachable r @ audit_octagon_discharges r
  in
  let findings = List.map (crossref misra) findings in
  aggregate r.Analyzer.graph findings []

let of_failure diags =
  let findings =
    List.filter_map
      (fun (d : Diag.t) ->
        if d.Diag.code = "E0202" then
          Some
            (finding ?func:d.Diag.loc.Diag.func ?addr:d.Diag.loc.Diag.addr
               ?suggestion:d.Diag.hint ~rules:[ "16.2" ] Diag.Error "A0513"
               "unannotated recursion: the analysis cannot virtually unroll the call graph")
        else None)
      diags
  in
  let findings = order_findings findings in
  List.iter count_finding findings;
  { findings; per_function = []; grade = Unanalyzable; failure = diags }

(* --- rendering --- *)

let to_diag f =
  let loc =
    match (f.addr, f.func) with
    | Some a, _ -> Diag.at_addr ?func:f.func a
    | None, Some fn -> Diag.in_func fn
    | None, None -> Diag.no_loc
  in
  Diag.make ?hint:f.suggestion ~loc f.severity Diag.Audit ~code:f.code f.message

let finding_to_json f =
  match Diag.to_json (to_diag f) with
  | Json.Obj fields ->
    Json.Obj
      (fields
      @ [
          ("tier", Json.String (tier_name f.tier));
          ("section", Json.String f.section);
          ("rules", Json.List (List.map (fun r -> Json.String r) f.rules));
        ])
  | j -> j

let to_json t =
  Json.Obj
    [
      ("grade", Json.String (grade_name t.grade));
      ( "per_function",
        Json.Obj (List.map (fun (fn, g) -> (fn, Json.String (grade_name g))) t.per_function) );
      ("findings", Json.List (List.map finding_to_json t.findings));
      ("failure", Json.List (List.map Diag.to_json t.failure));
    ]

let pp ppf t =
  Format.fprintf ppf "@[<v>predictability: %s@," (grade_name t.grade);
  List.iter
    (fun (fn, g) -> Format.fprintf ppf "  %s: %s@," fn (grade_name g))
    t.per_function;
  if t.failure <> [] then begin
    Format.fprintf ppf "analysis failed:@,";
    List.iter (fun d -> Format.fprintf ppf "  %a@," Diag.pp d) t.failure
  end;
  let count tier = List.length (List.filter (fun f -> f.tier = tier) t.findings) in
  Format.fprintf ppf "findings: %d tier-1, %d tier-2@," (count Tier1) (count Tier2);
  List.iter
    (fun f ->
      Format.fprintf ppf "%a@,    paper: %s" Diag.pp (to_diag f) f.section;
      if f.rules <> [] then
        Format.fprintf ppf "; cross-ref MISRA %s" (String.concat ", " f.rules);
      Format.fprintf ppf "@,")
    t.findings;
  Format.fprintf ppf "@]"

let emit_dot ppf (r : Analyzer.report) t =
  let g = r.Analyzer.graph in
  let worst_at addr =
    List.fold_left
      (fun acc f ->
        if f.addr = Some addr then
          match (acc, f.severity) with
          | Some Diag.Error, _ | _, Diag.Error -> Some Diag.Error
          | Some Diag.Warning, _ | _, Diag.Warning -> Some Diag.Warning
          | _ -> Some Diag.Info
        else acc)
      None t.findings
  in
  let codes_at addr =
    List.sort_uniq compare
      (List.filter_map (fun f -> if f.addr = Some addr then Some f.code else None) t.findings)
  in
  Format.fprintf ppf "digraph audit {@.";
  Format.fprintf ppf "  node [shape=box,fontname=\"monospace\"];@.";
  Array.iter
    (fun (n : Supergraph.node) ->
      let entry = n.Supergraph.block.Func_cfg.entry in
      (* findings anchor either at the block entry or at its terminator *)
      let term = terminator_addr n in
      let sev = match worst_at entry with None -> worst_at term | s -> s in
      let codes = List.sort_uniq compare (codes_at entry @ codes_at term) in
      let attrs =
        match sev with
        | Some Diag.Error -> ",style=filled,fillcolor=firebrick,fontcolor=white"
        | Some Diag.Warning -> ",style=filled,fillcolor=orange"
        | Some Diag.Info -> ",style=filled,fillcolor=lightblue"
        | None -> ""
      in
      let label_codes = if codes = [] then "" else "\\n" ^ String.concat " " codes in
      Format.fprintf ppf "  n%d [label=\"%s@@0x%x%s\"%s];@." n.Supergraph.id n.Supergraph.func
        entry label_codes attrs)
    g.Supergraph.nodes;
  Array.iter
    (fun (n : Supergraph.node) ->
      List.iter
        (fun (_, dst) -> Format.fprintf ppf "  n%d -> n%d;@." n.Supergraph.id dst)
        n.Supergraph.succs)
    g.Supergraph.nodes;
  Format.fprintf ppf "}@."
