test/test_asm_sim.ml: Alcotest Astring List Option Pred32_asm Pred32_hw Pred32_isa Pred32_sim
