lib/value/aval.ml: Format Pred32_isa
