lib/annot/annot.mli: Format
