(* Bound-drift ledger: NDJSON roundtrip, resilience to bad lines, and the
   drift/regression verdict. *)

module Ledger = Wcet_obs.Ledger
module Json = Wcet_diag.Json

let entry ?(program = "p") ?(digest = "d0") ?(commit = "c0") ?(date = "2026-08-08T00:00:00Z")
    ?(verdict = "complete") ?bound ?observed ?(metrics = []) () =
  { Ledger.program; digest; commit; date; verdict; bound; observed; metrics }

let with_tmp f =
  let path = Filename.temp_file "ledger" ".ndjson" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let load_exn path =
  match Ledger.load ~path with
  | Ok r -> r
  | Error msg -> Alcotest.failf "ledger load failed: %s" msg

let test_roundtrip () =
  with_tmp (fun path ->
      Sys.remove path;
      let e1 = entry ~bound:100 ~observed:80 ~metrics:[ ("holes", 1) ] () in
      let e2 = entry ~commit:"c1" ~bound:90 () in
      (match Ledger.append ~path [ e1 ] with Ok () -> () | Error m -> Alcotest.fail m);
      (match Ledger.append ~path [ e2 ] with Ok () -> () | Error m -> Alcotest.fail m);
      let entries, skipped = load_exn path in
      Alcotest.(check int) "two entries" 2 (List.length entries);
      Alcotest.(check int) "nothing skipped" 0 skipped;
      let e1' = List.hd entries in
      Alcotest.(check (option int)) "bound" (Some 100) e1'.Ledger.bound;
      Alcotest.(check (option int)) "observed" (Some 80) e1'.Ledger.observed;
      Alcotest.(check string) "commit survives" "c1" (List.nth entries 1).Ledger.commit;
      Alcotest.(check int) "metrics survive" 1
        (List.assoc "holes" e1'.Ledger.metrics))

let test_bad_lines_skipped () =
  with_tmp (fun path ->
      let oc = open_out path in
      output_string oc (Json.to_string (Ledger.entry_to_json (entry ~bound:5 ())));
      output_string oc "\nthis is not json\n{\"program\": 42}\n\n";
      close_out oc;
      let entries, skipped = load_exn path in
      Alcotest.(check int) "good entry kept" 1 (List.length entries);
      Alcotest.(check int) "two bad lines counted" 2 skipped)

let test_diff_regression () =
  let before =
    entry ~commit:"aaa111" ~bound:100
      ~metrics:[ ("value_unknown", 2); ("holes", 0) ]
      ()
  in
  let after =
    entry ~commit:"bbb222" ~date:"2026-08-09T00:00:00Z" ~bound:120
      ~metrics:[ ("value_unknown", 3); ("holes", 0) ]
      ()
  in
  match Ledger.diff [ before; after ] with
  | [ d ] ->
    Alcotest.(check bool) "regressed" true (Ledger.regressed d);
    Alcotest.(check (option int)) "bound delta" (Some 20) d.Ledger.d_bound_delta;
    Alcotest.(check int) "both reasons reported" 2 (List.length d.Ledger.d_regressions)
  | ds -> Alcotest.failf "expected one drift row, got %d" (List.length ds)

let test_diff_clean_and_improvement () =
  let before = entry ~commit:"aaa" ~bound:100 ~metrics:[ ("value_unknown", 3) ] () in
  let after = entry ~commit:"bbb" ~bound:90 ~metrics:[ ("value_unknown", 1) ] () in
  (match Ledger.diff [ before; after ] with
  | [ d ] ->
    Alcotest.(check bool) "improvement is not a regression" false (Ledger.regressed d);
    Alcotest.(check (option int)) "negative delta" (Some (-10)) d.Ledger.d_bound_delta
  | ds -> Alcotest.failf "expected one drift row, got %d" (List.length ds));
  (* a single snapshot has nothing to diff *)
  Alcotest.(check int) "single snapshot skipped" 0 (List.length (Ledger.diff [ before ]))

let test_diff_verdict_degrade () =
  let before = entry ~commit:"aaa" ~verdict:"complete" ~bound:50 () in
  let after = entry ~commit:"bbb" ~verdict:"partial" ~bound:50 () in
  match Ledger.diff [ before; after ] with
  | [ d ] -> Alcotest.(check bool) "verdict degrade flagged" true (Ledger.regressed d)
  | ds -> Alcotest.failf "expected one drift row, got %d" (List.length ds)

let test_diff_selectors () =
  let e c b = entry ~commit:c ~bound:b () in
  let entries = [ e "aaa111" 100; e "bbb222" 95; e "ccc333" 110 ] in
  (* default: last two *)
  (match Ledger.diff entries with
  | [ d ] ->
    Alcotest.(check string) "default from" "bbb222" d.Ledger.d_from.Ledger.commit;
    Alcotest.(check bool) "95 -> 110 regresses" true (Ledger.regressed d)
  | ds -> Alcotest.failf "expected one drift row, got %d" (List.length ds));
  (* explicit endpoints by commit prefix *)
  match Ledger.diff ~sel_from:"aaa" ~sel_to:"bbb" entries with
  | [ d ] ->
    Alcotest.(check string) "selected from" "aaa111" d.Ledger.d_from.Ledger.commit;
    Alcotest.(check bool) "100 -> 95 is clean" false (Ledger.regressed d)
  | ds -> Alcotest.failf "expected one drift row, got %d" (List.length ds)

let test_multi_program_grouping () =
  let ea c = entry ~program:"a" ~commit:c ~bound:10 () in
  let eb c b = entry ~program:"b" ~commit:c ~bound:b () in
  let entries = [ ea "c0"; eb "c0" 20; ea "c1"; eb "c1" 25 ] in
  let groups = Ledger.group entries in
  Alcotest.(check int) "two programs" 2 (List.length groups);
  let drifts = Ledger.diff entries in
  Alcotest.(check int) "one drift per program" 2 (List.length drifts);
  Alcotest.(check int) "exactly one regression" 1
    (List.length (List.filter Ledger.regressed drifts))

let test_stamp_helpers () =
  let date = Ledger.iso_date () in
  Alcotest.(check int) "iso date length" 20 (String.length date);
  Alcotest.(check bool) "commit is nonempty" true (String.length (Ledger.git_commit ()) > 0)

let () =
  Alcotest.run "ledger"
    [
      ( "ledger",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "bad lines skipped" `Quick test_bad_lines_skipped;
          Alcotest.test_case "diff regression" `Quick test_diff_regression;
          Alcotest.test_case "diff clean" `Quick test_diff_clean_and_improvement;
          Alcotest.test_case "diff verdict degrade" `Quick test_diff_verdict_degrade;
          Alcotest.test_case "diff selectors" `Quick test_diff_selectors;
          Alcotest.test_case "multi-program grouping" `Quick test_multi_program_grouping;
          Alcotest.test_case "stamp helpers" `Quick test_stamp_helpers;
        ] );
    ]
