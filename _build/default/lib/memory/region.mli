(** A memory region: an address range with access timing and cacheability.

    The paper's "imprecise memory accesses" challenge hinges on the target
    having several memory modules with different timings (fast scratchpad,
    main RAM, slow memory-mapped I/O): an access whose address the value
    analysis cannot resolve must be charged the latency of the slowest module
    it may touch. *)

type kind = Rom | Ram | Scratchpad | Io

type t = {
  name : string;
  kind : kind;
  base : int;  (** byte address, word-aligned *)
  size : int;  (** bytes, multiple of 4 *)
  read_latency : int;  (** cycles for one uncached word read *)
  write_latency : int;
  cacheable : bool;
  writable : bool;
}

val make :
  name:string ->
  kind:kind ->
  base:int ->
  size:int ->
  read_latency:int ->
  write_latency:int ->
  cacheable:bool ->
  writable:bool ->
  t

val contains : t -> int -> bool

(** [limit r] is the first byte address after the region. *)
val limit : t -> int

val pp : Format.formatter -> t -> unit
