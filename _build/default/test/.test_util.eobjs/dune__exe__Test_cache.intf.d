test/test_cache.mli:
