(* Tests for the observability layer (lib/obs) and its consumers:

   - span nesting, balancing (including through exceptions), and the
     disabled-mode no-op guarantee, measured down to allocation counts;
   - histogram bucket-edge placement (inclusive upper bounds, overflow);
   - determinism of the ldivmod_iterations metric across domain counts;
   - the registry pin: the full set of metric names, so a rename or removal
     is a deliberate, test-visible act (wcet_tool metrics shows this list);
   - explain: the per-block decomposition covers the IPET bound exactly,
     and the dominating loop is reported. *)

module Obs = Wcet_obs.Obs
module Metrics = Wcet_obs.Metrics
module Trace = Wcet_obs.Trace
module Json = Wcet_diag.Json
module Analyzer = Wcet_core.Analyzer
module Explain = Wcet_core.Explain
module Harness = Wcet_experiments.Harness

(* Metric registration happens at module-initialization time; reference
   every instrumented module so the registry this binary sees is the one
   wcet_tool links (the analyzer pulls in the rest transitively). *)
let () = ignore Softarith.Ldivmod.udivmod
let () = ignore Pred32_sim.Simulator.create
let () = ignore Misra.Audit.grade_name
let () = ignore Wcet_serve.Server.default_config
let () = ignore Wcet_core.Attribution.source_name

let with_obs f =
  Obs.enable ();
  Trace.reset ();
  Metrics.reset ();
  Fun.protect ~finally:Obs.disable f

(* --- spans --- *)

let test_span_nesting () =
  with_obs (fun () ->
      let inner_depth = ref (-1) in
      Trace.with_span "outer" (fun () ->
          Trace.with_span "inner" (fun () -> inner_depth := Trace.depth ()));
      Alcotest.(check int) "depth inside inner" 2 !inner_depth;
      Alcotest.(check int) "balanced after exit" 0 (Trace.depth ());
      let events = Trace.events () in
      Alcotest.(check (list string)) "completion order: inner closes first"
        [ "inner"; "outer" ]
        (List.map (fun (e : Trace.event) -> e.Trace.name) events);
      let by_name n = List.find (fun (e : Trace.event) -> e.Trace.name = n) events in
      Alcotest.(check int) "outer at depth 0" 0 (by_name "outer").Trace.depth;
      Alcotest.(check int) "inner at depth 1" 1 (by_name "inner").Trace.depth;
      let outer = by_name "outer" and inner = by_name "inner" in
      Alcotest.(check bool) "inner within outer" true
        (inner.Trace.start_ns >= outer.Trace.start_ns
        && Int64.add inner.Trace.start_ns inner.Trace.dur_ns
           <= Int64.add outer.Trace.start_ns outer.Trace.dur_ns))

let test_span_balances_on_exception () =
  with_obs (fun () ->
      (try Trace.with_span "fails" (fun () -> failwith "boom") with Failure _ -> ());
      Alcotest.(check int) "stack balanced" 0 (Trace.depth ());
      Alcotest.(check (list string)) "span still recorded" [ "fails" ]
        (List.map (fun (e : Trace.event) -> e.Trace.name) (Trace.events ())))

let test_span_attrs () =
  with_obs (fun () ->
      Trace.with_span ~attrs:[ ("at_entry", Trace.Int 1) ] "s" (fun () ->
          Trace.add_attr "inside" (Trace.Str "yes"));
      match Trace.events () with
      | [ e ] ->
        Alcotest.(check int) "attr count" 2 (List.length e.Trace.attrs);
        Alcotest.(check bool) "entry attr first" true
          (List.assoc "at_entry" e.Trace.attrs = Trace.Int 1)
      | evs -> Alcotest.failf "expected one event, got %d" (List.length evs))

(* --- disabled mode --- *)

let test_disabled_no_op () =
  Obs.disable ();
  Trace.reset ();
  Metrics.reset ();
  let c = Metrics.counter ~name:"test_disabled_counter" ~help:"test" () in
  let h =
    Metrics.histogram ~name:"test_disabled_hist" ~help:"test" ~buckets:[| 1; 2 |] ()
  in
  Metrics.incr c 5;
  Metrics.observe h 1;
  Trace.with_span "ignored" (fun () -> ());
  Alcotest.(check (option bool)) "counter untouched" (Some true)
    (Option.map (fun v -> v = Metrics.Counter_value 0) (Metrics.find "test_disabled_counter"));
  (match Metrics.find "test_disabled_hist" with
  | Some (Metrics.Histogram_value { count; _ }) -> Alcotest.(check int) "hist untouched" 0 count
  | _ -> Alcotest.fail "histogram not found");
  Alcotest.(check int) "no spans recorded" 0 (List.length (Trace.events ()))

let test_disabled_allocation_free () =
  Obs.disable ();
  let c = Metrics.counter ~name:"test_alloc_counter" ~help:"test" () in
  let h = Metrics.histogram ~name:"test_alloc_hist" ~help:"test" ~buckets:[| 1; 2 |] () in
  let body () = () in
  let iterations = 10_000 in
  (* Warm up so any one-time allocation is out of the measured window. *)
  Metrics.incr c 1;
  Metrics.observe h 1;
  Trace.with_span "warm" body;
  let w0 = Gc.minor_words () in
  for _ = 1 to iterations do
    Metrics.incr c 1;
    Metrics.observe h 1;
    Metrics.observe_n h 1 ~n:3;
    Trace.with_span "off" body
  done;
  let delta = Gc.minor_words () -. w0 in
  (* Allow a few words for the measurement itself; anything per-iteration
     would show up as >= [iterations] words. *)
  Alcotest.(check bool)
    (Printf.sprintf "disabled ops allocate nothing (delta %.0f words)" delta)
    true
    (delta < float_of_int iterations)

(* --- histogram buckets --- *)

(* Returns (buckets, overflow, sum, count); the inline record can't escape
   its match. *)
let hist_value name =
  match Metrics.find name with
  | Some (Metrics.Histogram_value { buckets; overflow; sum; count }) ->
    (buckets, overflow, sum, count)
  | _ -> Alcotest.failf "histogram %s not found" name

let test_histogram_bucket_edges () =
  with_obs (fun () ->
      let h =
        Metrics.histogram ~name:"test_edges" ~help:"test" ~buckets:[| 0; 10; 20 |] ()
      in
      (* Inclusive upper bounds: 0 -> bucket le=0; 1 and 10 -> le=10;
         11 and 20 -> le=20; 21 -> overflow. *)
      List.iter (Metrics.observe h) [ 0; 1; 10; 11; 20; 21 ];
      let buckets, overflow, sum, count = hist_value "test_edges" in
      Alcotest.(check (list (pair int int)))
        "bucket placement"
        [ (0, 1); (10, 2); (20, 2) ]
        (Array.to_list buckets);
      Alcotest.(check int) "overflow" 1 overflow;
      Alcotest.(check int) "count" 6 count;
      Alcotest.(check int) "sum" 63 sum)

let test_histogram_rejects_bad_buckets () =
  Alcotest.check_raises "non-increasing buckets"
    (Invalid_argument "Metrics.histogram: bucket bounds must be strictly increasing")
    (fun () -> ignore (Metrics.histogram ~name:"test_bad" ~help:"t" ~buckets:[| 1; 1 |] ()))

(* --- determinism across domain counts --- *)

let test_ldivmod_metric_deterministic () =
  let snapshot domains =
    with_obs (fun () ->
        ignore (Softarith.Ldivmod.histogram ~domains ~samples:200_000 ~seed:7L ());
        hist_value "ldivmod_iterations")
  in
  let s_buckets, s_overflow, s_sum, s_count = snapshot 1 in
  let p_buckets, p_overflow, p_sum, p_count = snapshot 4 in
  Alcotest.(check (list (pair int int)))
    "bucket counts identical for 1 vs 4 domains"
    (Array.to_list s_buckets) (Array.to_list p_buckets);
  Alcotest.(check int) "overflow identical" s_overflow p_overflow;
  Alcotest.(check int) "sum identical" s_sum p_sum;
  Alcotest.(check int) "count identical" s_count p_count

(* --- registry pin --- *)

(* The full metric name set, as listed by `wcet_tool metrics`. Adding a
   metric means adding it here; renaming or dropping one is an interface
   change this test makes deliberate. Locally-registered test_* metrics are
   filtered out. *)
let pinned_names =
  [
    "analyzer_failures";
    "analyzer_runs{verdict=complete}";
    "analyzer_runs{verdict=partial}";
    "audit_findings{code=A0501}";
    "audit_findings{code=A0502}";
    "audit_findings{code=A0503}";
    "audit_findings{code=A0504}";
    "audit_findings{code=A0505}";
    "audit_findings{code=A0506}";
    "audit_findings{code=A0507}";
    "audit_findings{code=A0508}";
    "audit_findings{code=A0509}";
    "audit_findings{code=A0510}";
    "audit_findings{code=A0511}";
    "audit_findings{code=A0512}";
    "audit_findings{code=A0513}";
    "cache_data_class{class=always_hit}";
    "cache_data_class{class=always_miss}";
    "cache_data_class{class=bypass}";
    "cache_data_class{class=not_classified}";
    "cache_fetch_class{class=always_hit}";
    "cache_fetch_class{class=always_miss}";
    "cache_fetch_class{class=bypass}";
    "cache_fetch_class{class=not_classified}";
    "cache_persistence_promotions{cache=data}";
    "cache_persistence_promotions{cache=fetch}";
    "cache_store_bytes_read";
    "cache_store_bytes_written";
    "cache_store_evictions";
    "cache_store_hits{granularity=function}";
    "cache_store_hits{granularity=program}";
    "cache_store_misses{granularity=function}";
    "cache_store_misses{granularity=program}";
    "fixpoint_joins{analysis=cache}";
    "fixpoint_joins{analysis=value}";
    "fixpoint_transfers{analysis=cache}";
    "fixpoint_transfers{analysis=octagon}";
    "fixpoint_transfers{analysis=value}";
    "fixpoint_widenings{analysis=cache}";
    "fixpoint_widenings{analysis=value}";
    "fixpoint_worklist_peak{analysis=cache}";
    "fixpoint_worklist_peak{analysis=value}";
    "ipet_constraints";
    "ipet_solves";
    "ipet_variables";
    "ldivmod_iterations";
    "path_disagreements";
    "path_mc_intractable";
    "path_portfolio_wins{backend=csolve}";
    "path_portfolio_wins{backend=ipet}";
    "path_portfolio_wins{backend=mc}";
    "path_solve_ms{backend=csolve}";
    "path_solve_ms{backend=ipet}";
    "path_solve_ms{backend=mc}";
    "path_solves{backend=csolve}";
    "path_solves{backend=ipet}";
    "path_solves{backend=mc}";
    "pipeline_block_wcet_cycles";
    "pipeline_blocks";
    "scc_count";
    "serve_connections";
    "serve_inflight";
    "serve_queue_depth";
    "serve_queue_peak";
    "serve_request_ms";
    "serve_requests{outcome=cancelled}";
    "serve_requests{outcome=completed}";
    "serve_requests{outcome=failed}";
    "serve_requests{outcome=rejected}";
    "serve_requests{outcome=undelivered}";
    "serve_subscribers";
    "serve_watch_events";
    "serve_watch_scans";
    "sim_cache_hits{cache=d}";
    "sim_cache_hits{cache=i}";
    "sim_cache_misses{cache=d}";
    "sim_cache_misses{cache=i}";
    "sim_cycles";
    "sim_instructions";
    "sim_stall_cycles";
    "simplex_pivots";
    "summary_computes{analysis=cache}";
    "summary_computes{analysis=value}";
    "summary_hits{analysis=cache}";
    "summary_hits{analysis=value}";
    "summary_scc_transfers{analysis=cache}";
    "summary_scc_transfers{analysis=value}";
    "trace_events_dropped";
    "value_accesses{precision=exact}";
    "value_accesses{precision=interval}";
    "value_accesses{precision=unknown}";
    "value_escalated_functions";
    "wcet_slack_cycles{source=cache_unclassified}";
    "wcet_slack_cycles{source=dynamic_residual}";
    "wcet_slack_cycles{source=flow_count}";
    "wcet_slack_cycles{source=pipeline_stall}";
    "wcet_slack_cycles{source=value_multi_region}";
  ]

let test_registry_pinned () =
  let registered =
    Metrics.all ()
    |> List.map fst
    |> List.filter (fun n -> not (String.length n >= 5 && String.sub n 0 5 = "test_"))
  in
  Alcotest.(check (list string)) "registry matches the pinned name list" pinned_names registered;
  List.iter
    (fun (name, help) ->
      Alcotest.(check bool) (name ^ " has a description") true (String.length help > 0))
    (Metrics.all ())

(* --- metrics populate during an observed analysis --- *)

let counter_value name =
  match Metrics.find name with
  | Some (Metrics.Counter_value v) -> v
  | Some (Metrics.Gauge_value v) -> v
  | _ -> Alcotest.failf "metric %s not found" name

let test_analysis_populates_metrics () =
  let program = Minic.Compile.compile Harness.quickstart_source in
  with_obs (fun () ->
      ignore (Analyzer.analyze program);
      Alcotest.(check bool) "value transfers recorded" true
        (counter_value "fixpoint_transfers{analysis=value}" > 0);
      Alcotest.(check bool) "cache transfers recorded" true
        (counter_value "fixpoint_transfers{analysis=cache}" > 0);
      Alcotest.(check bool) "fetch classifications recorded" true
        (counter_value "cache_fetch_class{class=always_hit}"
         + counter_value "cache_fetch_class{class=always_miss}"
         + counter_value "cache_fetch_class{class=not_classified}"
         + counter_value "cache_fetch_class{class=bypass}"
        > 0);
      Alcotest.(check bool) "simplex pivoted" true (counter_value "simplex_pivots" > 0);
      Alcotest.(check int) "one ipet solve" 1 (counter_value "ipet_solves");
      (* Default portfolio races all three path backends. *)
      Alcotest.(check int) "one ipet path solve" 1 (counter_value "path_solves{backend=ipet}");
      Alcotest.(check int) "one csolve path solve" 1
        (counter_value "path_solves{backend=csolve}");
      Alcotest.(check int) "one mc path solve" 1 (counter_value "path_solves{backend=mc}");
      Alcotest.(check int) "one complete run" 1 (counter_value "analyzer_runs{verdict=complete}");
      let spans = List.map (fun (e : Trace.event) -> e.Trace.name) (Trace.events ()) in
      List.iter
        (fun phase ->
          Alcotest.(check bool) (phase ^ " span present") true (List.mem phase spans))
        [ "analyze"; "decode"; "value"; "cache"; "persistence"; "pipeline"; "path" ])

(* --- Prometheus exposition --- *)

let contains hay needle = Astring.String.is_infix ~affix:needle hay

let check_contains rendered needle =
  Alcotest.(check bool) ("exposition contains " ^ needle) true (contains rendered needle)

let test_prometheus_exposition () =
  with_obs (fun () ->
      let c =
        Metrics.counter ~labels:[ ("kind", "x") ] ~name:"test_prom_requests" ~help:"test" ()
      in
      let h = Metrics.histogram ~name:"test_prom_ms" ~help:"test" ~buckets:[| 1; 5 |] () in
      Metrics.incr c 3;
      List.iter (Metrics.observe h) [ 0; 2; 7 ];
      let s = Metrics.to_prometheus () in
      (* family headers appear once per base name, then labeled series *)
      check_contains s "# HELP test_prom_requests test\n# TYPE test_prom_requests counter\n";
      check_contains s "test_prom_requests{kind=\"x\"} 3\n";
      (* histogram: inclusive per-bucket counts become cumulative, closed by
         +Inf (= total observations incl. overflow), plus _sum and _count *)
      check_contains s "# TYPE test_prom_ms histogram\n";
      check_contains s "test_prom_ms_bucket{le=\"1\"} 1\n";
      check_contains s "test_prom_ms_bucket{le=\"5\"} 2\n";
      check_contains s "test_prom_ms_bucket{le=\"+Inf\"} 3\n";
      check_contains s "test_prom_ms_sum 9\n";
      check_contains s "test_prom_ms_count 3\n";
      (* registry-wide gauges render as gauge families *)
      check_contains s "# TYPE serve_queue_depth gauge\n")

let test_prometheus_escaping () =
  (* split_name must invert render_name, and label values must be escaped
     per the exposition format *)
  let base, labels = Metrics.split_name "name{k=v,k2=w}" in
  Alcotest.(check string) "base" "name" base;
  Alcotest.(check (list (pair string string))) "labels" [ ("k", "v"); ("k2", "w") ] labels;
  let base2, labels2 = Metrics.split_name "plain" in
  Alcotest.(check string) "plain base" "plain" base2;
  Alcotest.(check int) "no labels" 0 (List.length labels2)

(* --- trace file validity --- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_trace_tmp f =
  let path = Filename.temp_file "wcet-trace" ".json" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let parse_trace path =
  match Json.parse (read_file path) with
  | Error msg -> Alcotest.failf "trace file is not valid JSON: %s" msg
  | Ok (Json.List evs) -> evs
  | Ok _ -> Alcotest.fail "trace file is not a JSON array"

let event_field ev key = Json.member key ev

let test_trace_chrome_valid () =
  with_obs (fun () ->
      Trace.with_span "outer" (fun () ->
          Trace.with_span ~attrs:[ ("n", Trace.Int 7) ] "inner" (fun () -> ()));
      Trace.with_span "second" (fun () -> ());
      with_trace_tmp (fun path ->
          Trace.write_chrome path;
          let evs = parse_trace path in
          Alcotest.(check int) "every completed span is an event" 3 (List.length evs);
          List.iter
            (fun ev ->
              Alcotest.(check (option string)) "complete event" (Some "X")
                (Option.bind (event_field ev "ph") Json.to_string_opt);
              Alcotest.(check bool) "has a name" true
                (Option.bind (event_field ev "name") Json.to_string_opt <> None))
            evs;
          (* span balance: inner's [ts, ts+dur] nests inside outer's *)
          let span name =
            let ev =
              List.find
                (fun ev -> Option.bind (event_field ev "name") Json.to_string_opt = Some name)
                evs
            in
            let num k =
              match event_field ev k with
              | Some (Json.Float f) -> f
              | Some (Json.Int i) -> float_of_int i
              | _ -> Alcotest.failf "event %s has no numeric %s" name k
            in
            (num "ts", num "ts" +. num "dur")
          in
          let o0, o1 = span "outer" and i0, i1 = span "inner" in
          Alcotest.(check bool) "inner nests inside outer" true (i0 >= o0 && i1 <= o1)))

let test_trace_flush_with_open_span () =
  (* the SIGTERM-flush path: write_chrome while a span is still open must
     produce a well-formed file holding only the completed spans *)
  with_obs (fun () ->
      Trace.with_span "done" (fun () -> ());
      with_trace_tmp (fun path ->
          Trace.with_span "open" (fun () -> Trace.write_chrome path);
          let evs = parse_trace path in
          let names =
            List.filter_map (fun ev -> Option.bind (event_field ev "name") Json.to_string_opt) evs
          in
          Alcotest.(check (list string)) "only completed spans flushed" [ "done" ] names);
      Alcotest.(check int) "stack balanced after flush" 0 (Trace.depth ()))

let test_trace_drop_counted () =
  with_obs (fun () ->
      let cap = Trace.buffer_capacity () in
      Fun.protect
        ~finally:(fun () -> Trace.set_buffer_capacity cap)
        (fun () ->
          Trace.set_buffer_capacity 8;
          for _ = 1 to 20 do
            Trace.with_span "burst" (fun () -> ())
          done;
          Alcotest.(check int) "12 spans dropped" 12 (Trace.dropped ());
          (match Metrics.find "trace_events_dropped" with
          | Some (Metrics.Counter_value v) ->
            Alcotest.(check int) "trace_events_dropped counts them" 12 v
          | _ -> Alcotest.fail "trace_events_dropped not registered");
          (* a trace written while dropping is still valid, just incomplete *)
          with_trace_tmp (fun path ->
              Trace.write_chrome path;
              Alcotest.(check int) "capacity events survive" 8
                (List.length (parse_trace path)))))

let test_profile_aggregation () =
  with_obs (fun () ->
      for _ = 1 to 3 do
        Trace.with_span "work" (fun () -> Trace.with_span "sub" (fun () -> ()))
      done;
      let rendered = Format.asprintf "@[<v>%a@]" Trace.pp_profile () in
      Alcotest.(check bool) "repeats aggregate to one row with x3" true
        (contains rendered "x3");
      (* merged: "work" appears once, not three times *)
      let count_occurrences needle hay =
        let n = String.length needle in
        let rec go i acc =
          if i + n > String.length hay then acc
          else if String.sub hay i n = needle then go (i + 1) (acc + 1)
          else go (i + 1) acc
        in
        go 0 0
      in
      Alcotest.(check int) "one aggregated work row" 1 (count_occurrences "work" rendered);
      let r2 = Format.asprintf "@[<v>%a@]" Trace.pp_profile () in
      Alcotest.(check string) "re-rendering is deterministic" rendered r2)

(* --- explain --- *)

let test_explain_covers_bound () =
  let program = Minic.Compile.compile Harness.quickstart_source in
  let report = Analyzer.analyze program in
  let ex = Explain.of_report report in
  Alcotest.(check int) "decomposition covers the bound exactly" report.Analyzer.wcet
    ex.Explain.covered;
  Alcotest.(check int) "wcet echoed" report.Analyzer.wcet ex.Explain.wcet;
  Alcotest.(check bool) "per-block totals are count*cycles" true
    (List.for_all
       (fun (r : Explain.block_row) -> r.Explain.total = r.Explain.count * r.Explain.cycles)
       ex.Explain.blocks);
  Alcotest.(check bool) "rows sorted by total descending" true
    (let rec sorted = function
       | (a : Explain.block_row) :: (b :: _ as rest) ->
         a.Explain.total >= b.Explain.total && sorted rest
       | _ -> true
     in
     sorted ex.Explain.blocks);
  match ex.Explain.dominating with
  | None -> Alcotest.fail "quickstart has a loop; expected a dominating loop"
  | Some row ->
    Alcotest.(check string) "dominating loop in main" "main" row.Explain.loop_func;
    let rendered = Format.asprintf "%a" (Explain.pp ~top:5) ex in
    Alcotest.(check bool) "pp names the dominating loop" true
      (Astring.String.is_infix ~affix:"dominating loop:" rendered)

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "balances on exception" `Quick test_span_balances_on_exception;
          Alcotest.test_case "span attributes" `Quick test_span_attrs;
        ] );
      ( "disabled",
        [
          Alcotest.test_case "recording is a no-op" `Quick test_disabled_no_op;
          Alcotest.test_case "allocation-free" `Quick test_disabled_allocation_free;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram bucket edges" `Quick test_histogram_bucket_edges;
          Alcotest.test_case "bad buckets rejected" `Quick test_histogram_rejects_bad_buckets;
          Alcotest.test_case "ldivmod metric domain-count independent" `Quick
            test_ldivmod_metric_deterministic;
          Alcotest.test_case "registry pinned" `Quick test_registry_pinned;
          Alcotest.test_case "analysis populates metrics" `Quick test_analysis_populates_metrics;
          Alcotest.test_case "prometheus exposition" `Quick test_prometheus_exposition;
          Alcotest.test_case "name round-trip" `Quick test_prometheus_escaping;
        ] );
      ( "chrome trace",
        [
          Alcotest.test_case "written file re-parses" `Quick test_trace_chrome_valid;
          Alcotest.test_case "flush with open span" `Quick test_trace_flush_with_open_span;
          Alcotest.test_case "drops counted" `Quick test_trace_drop_counted;
          Alcotest.test_case "profile aggregation deterministic" `Quick test_profile_aggregation;
        ] );
      ( "explain",
        [ Alcotest.test_case "covers the bound exactly" `Quick test_explain_covers_bound ] );
    ]
