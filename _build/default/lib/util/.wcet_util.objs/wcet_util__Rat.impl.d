lib/util/rat.ml: Format
