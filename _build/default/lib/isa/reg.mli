(** General-purpose registers of the PRED32 target.

    Sixteen registers [r0]..[r15]. [r0] is hardwired to zero (writes are
    discarded), as on classic RISC targets; the ABI reserves [r12] as frame
    pointer, [r13] as stack pointer and [r14] as link register. *)

type t

val of_int : int -> t

(** [to_int r] is the register index in [0, 15]. *)
val to_int : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int

val zero : t  (** [r0], hardwired zero *)

val fp : t  (** [r12], frame pointer *)

val sp : t  (** [r13], stack pointer *)

val lr : t  (** [r14], link register *)

val rv : t  (** [r1], return value / first scratch *)

(** All sixteen registers in index order. *)
val all : t list

(** Registers available to the code generator as scratch/temporaries
    (excludes [r0], [fp], [sp], [lr]). *)
val temporaries : t list

val pp : Format.formatter -> t -> unit
val name : t -> string
