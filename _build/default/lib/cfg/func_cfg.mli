(** Intraprocedural control-flow reconstruction: decode one function's code
    range into basic blocks (the first half of the paper's "decoding phase",
    Figure 1). *)

exception Decode_error of string

type terminator =
  | Term_fall of int  (** falls through to the given address *)
  | Term_branch of {
      cond : Pred32_isa.Insn.branch_cond;
      rs1 : Pred32_isa.Reg.t;
      rs2 : Pred32_isa.Reg.t;
      taken : int;
      fall : int;
    }
  | Term_jump of int
  | Term_call of { target : int; return_to : int }
  | Term_call_indirect of { reg : Pred32_isa.Reg.t; site : int; return_to : int }
  | Term_return  (** [jr lr] *)
  | Term_jump_indirect of { reg : Pred32_isa.Reg.t; site : int }
  | Term_halt

type block = {
  entry : int;  (** address of the first instruction *)
  insns : (int * Pred32_isa.Insn.t) array;  (** includes the terminator *)
  term : terminator;
}

(** [build ?extra_leaders program func] decodes and partitions a function.
    [extra_leaders] adds block boundaries at the given addresses (targets of
    indirect jumps supplied by annotations, e.g. setjmp continuations).
    Raises [Decode_error] on an illegal instruction, a branch leaving the
    function, or a [Jump_reg] through a register other than [lr] with no way
    to split (those are legal, they terminate a block; the error cases are
    undecodable words). *)
val build :
  ?extra_leaders:int list -> Pred32_asm.Program.t -> Pred32_asm.Program.func_info -> block list

(** [block_at blocks addr] finds the block whose entry is [addr]. *)
val block_at : block list -> int -> block option

val pp_block : Format.formatter -> block -> unit
