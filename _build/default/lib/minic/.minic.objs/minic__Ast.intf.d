lib/minic/ast.mli: Format Types
