examples/quickstart.ml: Format List Minic Pred32_asm Pred32_hw Pred32_sim String Wcet_core
