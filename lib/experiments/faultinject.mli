(** Fault-injection robustness harness: the toolchain must never crash on
    malformed input — every failure is a structured {!Wcet_diag.Diag.t}
    with a stable code.

    {!classify_exn} is the single mapping from the toolchain's documented
    exception families to diagnostics; [bin/wcet_tool]'s top-level handler
    and this campaign share it, so "handled gracefully" means the same
    thing in production and under test. Deliberately generic exceptions
    ([Failure], [Invalid_argument], [Not_found], assertion failures) are
    {e not} classified: letting them through is exactly the bug the
    campaign exists to catch.

    The campaign mutates inputs along five axes — MiniC source text,
    assembly text, linked binary images (corrupted instruction words,
    truncated code), annotation text (including well-formed but bogus or
    contradictory annotations), and memory maps — and drives each mutant
    through compile/analyze/simulate under a fuel cap. Everything is
    seeded PCG32: a campaign is reproducible from its seed. *)

(** [classify_exn e] is the structured diagnostic for a documented,
    expected failure, or [None] for anything that should count as a
    crash. *)
val classify_exn : exn -> Wcet_diag.Diag.t option

type outcome =
  | Ran_complete  (** mutant compiled and analyzed to a complete bound *)
  | Ran_partial  (** analyzed with holes (partial bound) *)
  | Rejected of Wcet_diag.Diag.t  (** failed with a structured diagnostic *)
  | Crashed of string  (** escaped exception — a robustness bug *)

type trial = { family : string; index : int; outcome : outcome }

type campaign = {
  trials : trial list;
  complete : int;
  partial : int;
  rejected : int;
  crashed : int;
}

(** Crash-free. *)
val ok : campaign -> bool

(** [(code, count)] histogram over the rejected trials. *)
val rejection_histogram : campaign -> (string * int) list

(** [run ?seed ?minic ?annots ?asm ?binary ?memmap ()] runs the campaign:
    [minic] source-text mutants (default 120), [annots] annotation mutants
    (default 60), [asm] assembly-text mutants (default 30), [binary]
    corrupted/truncated images (default 24), plus the fixed bad-memory-map
    suite ([memmap] defaults true). Defaults total 240+ trials. *)
val run :
  ?seed:int64 ->
  ?minic:int ->
  ?annots:int ->
  ?asm:int ->
  ?binary:int ->
  ?memmap:bool ->
  unit ->
  campaign

val pp_campaign : Format.formatter -> campaign -> unit
val to_json : campaign -> Wcet_diag.Json.t
