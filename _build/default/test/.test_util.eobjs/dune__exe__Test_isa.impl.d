test/test_isa.ml: Alcotest Int32 List Pred32_isa QCheck2 QCheck_alcotest
