lib/lp/ilp.ml: Array Simplex Wcet_util
