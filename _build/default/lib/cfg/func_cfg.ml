module Insn = Pred32_isa.Insn
module Reg = Pred32_isa.Reg
module Program = Pred32_asm.Program

exception Decode_error of string

let decode_error fmt = Format.kasprintf (fun s -> raise (Decode_error s)) fmt

type terminator =
  | Term_fall of int
  | Term_branch of {
      cond : Insn.branch_cond;
      rs1 : Reg.t;
      rs2 : Reg.t;
      taken : int;
      fall : int;
    }
  | Term_jump of int
  | Term_call of { target : int; return_to : int }
  | Term_call_indirect of { reg : Reg.t; site : int; return_to : int }
  | Term_return
  | Term_jump_indirect of { reg : Reg.t; site : int }
  | Term_halt

type block = { entry : int; insns : (int * Insn.t) array; term : terminator }

let branch_target addr off = addr + 4 + (4 * off)

let build ?(extra_leaders = []) program (func : Program.func_info) =
  let insns = Program.disassemble program func in
  let in_range a = a >= func.Program.entry && a < func.Program.limit in
  (* Collect leaders. *)
  let leaders = Hashtbl.create 16 in
  let add_leader a = if in_range a then Hashtbl.replace leaders a () else () in
  add_leader func.Program.entry;
  List.iter add_leader extra_leaders;
  List.iter
    (fun (addr, insn) ->
      match insn with
      | Insn.Illegal w -> decode_error "illegal instruction 0x%08lx at 0x%x" w addr
      | Insn.Branch (_, _, _, off) ->
        let target = branch_target addr off in
        if not (in_range target) then
          decode_error "branch at 0x%x leaves function %s" addr func.Program.name;
        add_leader target;
        add_leader (addr + 4)
      | Insn.Jump w ->
        let target = 4 * w in
        if not (in_range target) then
          decode_error "jump at 0x%x leaves function %s" addr func.Program.name;
        add_leader target;
        add_leader (addr + 4)
      | Insn.Call _ | Insn.Call_reg _ -> add_leader (addr + 4)
      | Insn.Jump_reg _ | Insn.Halt -> add_leader (addr + 4)
      | Insn.Alu _ | Insn.Alui _ | Insn.Lui _ | Insn.Load _ | Insn.Store _ | Insn.Cmovnz _
      | Insn.Nop ->
        ())
    insns;
  (* Partition into blocks. *)
  let insn_array = Array.of_list insns in
  let n = Array.length insn_array in
  let blocks = ref [] in
  let i = ref 0 in
  while !i < n do
    let start = !i in
    let start_addr = fst insn_array.(start) in
    (* Advance until the next leader or a terminator instruction. *)
    let j = ref start in
    let continue = ref true in
    while !continue do
      let addr, insn = insn_array.(!j) in
      if Insn.is_block_terminator insn then continue := false
      else if !j + 1 >= n then continue := false
      else if Hashtbl.mem leaders (addr + 4) then continue := false
      else incr j
    done;
    let last_addr, last_insn = insn_array.(!j) in
    let term =
      match last_insn with
      | Insn.Branch (cond, rs1, rs2, off) ->
        Term_branch { cond; rs1; rs2; taken = branch_target last_addr off; fall = last_addr + 4 }
      | Insn.Jump w -> Term_jump (4 * w)
      | Insn.Call w -> Term_call { target = 4 * w; return_to = last_addr + 4 }
      | Insn.Call_reg reg -> Term_call_indirect { reg; site = last_addr; return_to = last_addr + 4 }
      | Insn.Jump_reg reg ->
        if Reg.equal reg Reg.lr then Term_return else Term_jump_indirect { reg; site = last_addr }
      | Insn.Halt -> Term_halt
      | Insn.Illegal w -> decode_error "illegal instruction 0x%08lx at 0x%x" w last_addr
      | Insn.Alu _ | Insn.Alui _ | Insn.Lui _ | Insn.Load _ | Insn.Store _ | Insn.Cmovnz _
      | Insn.Nop ->
        if last_addr + 4 >= func.Program.limit then
          decode_error "function %s falls off its end at 0x%x" func.Program.name last_addr;
        Term_fall (last_addr + 4)
    in
    let body = Array.sub insn_array start (!j - start + 1) in
    blocks := { entry = start_addr; insns = body; term } :: !blocks;
    i := !j + 1
  done;
  List.rev !blocks

let block_at blocks addr = List.find_opt (fun b -> b.entry = addr) blocks

let pp_term ppf = function
  | Term_fall a -> Format.fprintf ppf "fall -> 0x%x" a
  | Term_branch { taken; fall; _ } -> Format.fprintf ppf "branch -> 0x%x / 0x%x" taken fall
  | Term_jump a -> Format.fprintf ppf "jump -> 0x%x" a
  | Term_call { target; return_to } -> Format.fprintf ppf "call 0x%x, returns 0x%x" target return_to
  | Term_call_indirect { site; return_to; _ } ->
    Format.fprintf ppf "indirect call at 0x%x, returns 0x%x" site return_to
  | Term_return -> Format.pp_print_string ppf "return"
  | Term_jump_indirect { site; _ } -> Format.fprintf ppf "indirect jump at 0x%x" site
  | Term_halt -> Format.pp_print_string ppf "halt"

let pp_block ppf b =
  Format.fprintf ppf "@[<v>block 0x%x (%d insns) %a@]" b.entry (Array.length b.insns) pp_term
    b.term
