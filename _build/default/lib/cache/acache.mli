(** Abstract LRU cache states (Ferdinand-style must/may analysis).

    The must cache maps lines to an upper bound on their LRU age: a line
    present in the must cache is guaranteed in the concrete cache, so an
    access to it is an always-hit. The may cache maps lines to a lower
    bound on age: a line absent from the may cache is guaranteed absent
    (always-miss). Property tests check both guarantees against the
    concrete {!Pred32_hw.Lru_cache} on random traces. *)

type t

val empty : Pred32_hw.Cache_config.t -> t

(** [access t line] returns the state after an access to [line]. *)
val access : t -> int -> t

(** [access_unknown_in_set t] models an access to an unknown line: every set
    may age, and may-contents become unknown (classifications after it can
    no longer prove always-miss, and all must-ages grow). *)
val access_unknown : t -> t

val must_contains : t -> int -> bool

(** [may_excludes t line] — the line is provably not cached. *)
val may_excludes : t -> int -> bool

val join : t -> t -> t
val leq : t -> t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
