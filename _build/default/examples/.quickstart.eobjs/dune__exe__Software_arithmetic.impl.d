examples/software_arithmetic.ml: Format List Option Softarith Wcet_corpus Wcet_experiments
