module Json = Wcet_diag.Json
module Diag = Wcet_diag.Diag
module Analyzer = Wcet_core.Analyzer
module Program = Pred32_asm.Program

type analyze = string -> (Analyzer.report, Diag.t list) result

(* What the delta is computed against: the digest of each function's code
   bytes, the bound, and the findings as (code, func) pairs. *)
type baseline = {
  wcet : int;
  verdict : string;
  func_digests : (string * string) list;
  findings : (string * string) list;
}

type entry = {
  mutable fingerprint : string;  (** content digest last analyzed *)
  mutable pending : (float * string) option;  (** (first seen, digest) in debounce *)
  mutable last : baseline option;  (** [None] after a failed analysis *)
}

type t = {
  dir : string;
  debounce_s : float;
  analyze : analyze;
  files : (string, entry) Hashtbl.t;
  mutable initialized : bool;  (** first poll = silent baseline scan *)
}

let create ~dir ~debounce_s ~analyze =
  { dir; debounce_s; analyze; files = Hashtbl.create 16; initialized = false }

let function_digests (program : Program.t) =
  List.map
    (fun (f : Program.func_info) ->
      let buf = Buffer.create 256 in
      let addr = ref f.Program.entry in
      while !addr < f.Program.limit do
        Buffer.add_string buf
          (string_of_int (Pred32_memory.Image.read_word program.Program.image !addr));
        Buffer.add_char buf ';';
        addr := !addr + 4
      done;
      (f.Program.name, Digest.to_hex (Digest.string (Buffer.contents buf))))
    program.Program.functions

let verdict_name = function Analyzer.Complete -> "complete" | Analyzer.Partial -> "partial"

let finding_key (d : Diag.t) = (d.Diag.code, match d.Diag.loc.Diag.func with Some f -> f | None -> "")

let baseline_of (report : Analyzer.report) =
  {
    wcet = report.Analyzer.wcet;
    verdict = verdict_name report.Analyzer.verdict;
    func_digests = function_digests report.Analyzer.program;
    findings = List.map finding_key report.Analyzer.diagnostics;
  }

(* Functions added, removed, or with different code bytes. *)
let changed_functions old_digests new_digests =
  let changed =
    List.filter_map
      (fun (name, d) ->
        match List.assoc_opt name old_digests with
        | Some d' when d' = d -> None
        | Some _ | None -> Some name)
      new_digests
  in
  let removed =
    List.filter_map
      (fun (name, _) ->
        if List.mem_assoc name new_digests then None else Some name)
      old_digests
  in
  List.sort_uniq compare (changed @ removed)

let change_event path old_baseline (report : Analyzer.report) =
  let fresh = baseline_of report in
  let fields =
    match old_baseline with
    | None ->
      [
        ("wcet", Json.Int fresh.wcet);
        ("old_wcet", Json.Null);
        ("drift", Json.Null);
        ("verdict", Json.String fresh.verdict);
        ( "changed_functions",
          Json.List (List.map (fun (n, _) -> Json.String n) fresh.func_digests) );
        ( "new_findings",
          Json.List (List.map Diag.to_json report.Analyzer.diagnostics) );
        ("discharged_findings", Json.List []);
      ]
    | Some old ->
      let changed = changed_functions old.func_digests fresh.func_digests in
      let new_findings =
        List.filter
          (fun d -> not (List.mem (finding_key d) old.findings))
          report.Analyzer.diagnostics
      in
      let discharged =
        List.filter (fun k -> not (List.mem k fresh.findings)) old.findings
      in
      [
        ("wcet", Json.Int fresh.wcet);
        ("old_wcet", Json.Int old.wcet);
        ("drift", Json.Int (fresh.wcet - old.wcet));
        ("verdict", Json.String fresh.verdict);
        ("changed_functions", Json.List (List.map (fun n -> Json.String n) changed));
        ("new_findings", Json.List (List.map Diag.to_json new_findings));
        ( "discharged_findings",
          Json.List
            (List.map
               (fun (code, func) ->
                 Json.Obj [ ("code", Json.String code); ("func", Json.String func) ])
               discharged) );
      ]
  in
  (Proto.event "change" (("path", Json.String path) :: fields), Some fresh)

let watched_name name =
  Filename.check_suffix name ".mc" || Filename.check_suffix name ".s"

let listing dir =
  match Sys.readdir dir with
  | names ->
    Array.to_list names
    |> List.filter watched_name
    |> List.map (fun n -> Filename.concat dir n)
    |> List.sort compare
  | exception Sys_error _ -> []

let vanished_event path =
  Proto.event "vanished"
    [
      ("path", Json.String path);
      ( "diagnostic",
        Diag.to_json
          (Diag.makef Diag.Warning Diag.Serve ~code:"W0701"
             "watched source %s vanished or became unreadable (skipped)" path) );
    ]

(* Analyze [path] and compute its event against [prior]; always updates the
   entry's baseline. *)
let reanalyze t path (e : entry) ~digest ~emit =
  e.fingerprint <- digest;
  e.pending <- None;
  match t.analyze path with
  | Ok report ->
    let ev, fresh = change_event path e.last report in
    e.last <- fresh;
    if emit then [ ev ] else []
  | Error ds ->
    e.last <- None;
    if emit then
      [
        Proto.event "analysis-failed"
          [
            ("path", Json.String path);
            ("diagnostics", Json.List (List.map Diag.to_json ds));
          ];
      ]
    else []

let poll ?now t =
  let now = match now with Some x -> x | None -> Wcet_util.Mono_clock.now () in
  let emit = t.initialized in
  t.initialized <- true;
  let present = listing t.dir in
  let events = ref [] in
  (* Vanished files: known but no longer listed (or unreadable below). *)
  let still_here = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace still_here p ()) present;
  Hashtbl.iter
    (fun path _ ->
      if not (Hashtbl.mem still_here path) then begin
        Hashtbl.remove t.files path;
        if emit then events := vanished_event path :: !events
      end)
    (Hashtbl.copy t.files);
  List.iter
    (fun path ->
      match Digest.to_hex (Digest.file path) with
      | digest -> (
        match Hashtbl.find_opt t.files path with
        | None ->
          (* New file: baseline immediately on the first scan, debounce
             like any other change afterwards. *)
          let e = { fingerprint = ""; pending = None; last = None } in
          Hashtbl.replace t.files path e;
          if emit then e.pending <- Some (now, digest)
          else events := reanalyze t path e ~digest ~emit:false @ !events
        | Some e ->
          if digest = e.fingerprint then e.pending <- None
          else (
            match e.pending with
            | Some (since, d) when d = digest ->
              if now -. since >= t.debounce_s then
                events := reanalyze t path e ~digest ~emit @ !events
            | Some _ | None -> e.pending <- Some (now, digest)))
      | exception _ ->
        if Hashtbl.mem t.files path then begin
          Hashtbl.remove t.files path;
          if emit then events := vanished_event path :: !events
        end)
    present;
  List.rev !events
