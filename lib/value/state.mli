(** Abstract machine state of the loop/value analysis: one interval per
    register plus a map of tracked memory words.

    Memory addresses absent from the tracked map read as the ROM image
    constant when they fall in ROM, and as [Top] otherwise (RAM contents are
    unknown at program start — inputs are poked there). A write through an
    unresolvable pointer discards all tracked RAM knowledge, reproducing the
    paper's "any write access to an unknown memory location destroys all
    known information" (Section 4.3); frame-linkage words (saved fp/lr) are
    exempt under the standard stack-discipline assumption. *)

module Addr_map : Map.S with type key = int

type t = {
  regs : Aval.t array;  (** 16 entries; index [Reg.to_int] *)
  mem : Aval.t Addr_map.t;  (** tracked (written) memory words *)
  origins : int option array;  (** register came from this memory word *)
}

val entry_state : assumes:(int * Aval.t) list -> t

val get_reg : t -> Pred32_isa.Reg.t -> Aval.t
val set_reg : t -> Pred32_isa.Reg.t -> Aval.t -> t

(** [set_reg_origin t r v ~origin] also records where the value was loaded
    from. *)
val set_reg_origin : t -> Pred32_isa.Reg.t -> Aval.t -> origin:int -> t

val load : program:Pred32_asm.Program.t -> t -> int -> Aval.t

(** [store ~linkage t addr v] strong update at a concrete address. *)
val store : linkage:(int -> bool) -> t -> int -> Aval.t -> t

(** [store_weak ~linkage t addrs v] weak update over candidate addresses. *)
val store_weak : linkage:(int -> bool) -> t -> int list -> Aval.t -> t

(** [havoc ~linkage t] forgets all tracked memory except linkage words. *)
val havoc : linkage:(int -> bool) -> t -> t

val leq : t -> t -> bool
val join : t -> t -> t
val widen : t -> t -> t

(** Greatest lower bound (used by the octagon escalation to fold relational
    refinements back under the interval result). *)
val meet : t -> t -> t
val pp : Format.formatter -> t -> unit
