lib/memory/image.mli: Memory_map Pred32_isa
