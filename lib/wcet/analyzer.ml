module Program = Pred32_asm.Program
module Hw_config = Pred32_hw.Hw_config
module Memory_map = Pred32_memory.Memory_map
module Supergraph = Wcet_cfg.Supergraph
module Func_cfg = Wcet_cfg.Func_cfg
module Loops = Wcet_cfg.Loops
module Resolver = Wcet_cfg.Resolver
module Aval = Wcet_value.Aval
module Analysis = Wcet_value.Analysis
module Loop_bounds = Wcet_value.Loop_bounds
module Resolve_iter = Wcet_value.Resolve_iter
module Cache_analysis = Wcet_cache.Cache_analysis
module Block_timing = Wcet_pipeline.Block_timing
module Ipet = Wcet_ipet.Ipet
module Path_analysis = Wcet_path.Path_analysis
module Portfolio = Wcet_path.Portfolio
module Annot = Wcet_annot.Annot
module Diag = Wcet_diag.Diag
module Metrics = Wcet_obs.Metrics
module Trace = Wcet_obs.Trace

let m_runs_complete =
  Metrics.counter ~labels:[ ("verdict", "complete") ] ~name:"analyzer_runs"
    ~help:"Analyses finishing with a complete (unconditional) bound" ()

let m_runs_partial =
  Metrics.counter ~labels:[ ("verdict", "partial") ] ~name:"analyzer_runs"
    ~help:"Analyses finishing with a partial (hole-conditional) bound" ()

let m_failures =
  Metrics.counter ~name:"analyzer_failures" ~help:"Analyses aborted by a fatal diagnostic" ()

let m_scc_count =
  Metrics.gauge ~name:"scc_count"
    ~help:"Strongly connected components of the analyzed program's call graph" ()

(* Which fixpoint engine drives the value and cache analyses. [Summary] is
   the default: a bottom-up component-scheduled solve over the call-graph
   condensation with persistent per-function summaries (O(changed)
   re-analysis). [Whole_program] is the classic single-worklist solve; it
   is forced whenever a non-default worklist strategy is requested, since
   the component schedule is inherently priority-ordered. *)
type engine = Summary | Whole_program

let engine_name = function Summary -> "summary" | Whole_program -> "whole-program"

(* The WCET_CACHE_PARANOID env flag cross-checks every summary-engine run
   against a fresh whole-program solve and fails loudly (E0204) on any
   semantic state divergence. Debug aid: the extra solves also inflate the
   fixpoint metrics. *)
let paranoid () =
  match Sys.getenv_opt "WCET_CACHE_PARANOID" with
  | Some v when v <> "" && v <> "0" -> true
  | _ -> false

(* The WCET_VALUE_PARANOID env flag cross-checks every octagon escalation
   against the interval baseline: refined states must be leq the interval
   states at every node, and the final WCET bound must not increase. Any
   violation is an E0503 fatal — an escalation may only ever tighten. *)
let value_paranoid () =
  match Sys.getenv_opt "WCET_VALUE_PARANOID" with
  | Some v when v <> "" && v <> "0" -> true
  | _ -> false

(* The WCET_PATH_PARANOID env flag arms the portfolio driver's witness
   cross-check: on fact-free programs every complete backend must account
   for the certified witness paths the others found, which forces the
   complete bounds to agree exactly. Any violation is an E0303 fatal. *)
let path_paranoid () =
  match Sys.getenv_opt "WCET_PATH_PARANOID" with
  | Some v when v <> "" && v <> "0" -> true
  | _ -> false

exception Analysis_failed of Diag.t list

let () =
  Printexc.register_printer (function
    | Analysis_failed ds ->
      Some (Format.asprintf "Analysis_failed:@,%a" Diag.pp_list ds)
    | _ -> None)

type phase = Decode | Loop_value | Cache | Pipeline | Path

let phase_name = function
  | Decode -> "decoding / CFG reconstruction"
  | Loop_value -> "loop & value analysis"
  | Cache -> "cache analysis"
  | Pipeline -> "pipeline analysis"
  | Path -> "path analysis"

type confidence = Complete | Partial

type hole =
  | Hole_call of { site : int; func : string }
  | Hole_jump of { site : int; func : string }
  | Hole_loop of { header : int; func : string; reason : string }
  | Hole_irreducible of { blocks : int list; func : string }

(* What an octagon escalation changed, kept in the report so the auditor
   can mark the interval-pass findings the relational pass resolved
   ([discharged-by: octagon]) and the observability layer can attribute the
   precision gain. *)
type esc_info = {
  ei_domain : string;  (* requested domain: "octagon" or "auto" *)
  ei_funcs : string list;  (* functions that triggered the escalation *)
  ei_transfers : int;  (* product-domain transfer count *)
  ei_slots : int list;  (* tracked stack/global word addresses *)
  ei_discharged_loops : (int * string * string) list;
      (* (header addr, func, interval cause) of loops the interval pass
         left unbounded and the relational pass bounded *)
  ei_tightened_accesses : (int * string * Aval.t * Aval.t) list;
      (* (insn addr, func, interval addr, refined addr) of accesses whose
         address interval strictly tightened under the octagon *)
}

(* One path backend's contribution to this run, kept in the report for
   explain, the daemon and the E5 bench table. *)
type backend_run = {
  br_name : string;
  br_bound : int option;  (* None = the backend failed *)
  br_error : (string * string) option;  (* (diag code, detail) *)
  br_wall_ms : int;
  br_winner : bool;  (* supplied the bound the report carries *)
}

type report = {
  program : Program.t;
  hw : Hw_config.t;
  graph : Supergraph.t;
  loops : Loops.info;
  value : Analysis.result;
  escalation : esc_info option;
  derived_bounds : Loop_bounds.t;
  effective_bounds : (int * int) list;
  unbounded_loops : (int * string) list;
  cache : Cache_analysis.result;
  timing : Block_timing.t;
  solution : Ipet.solution;
  path_backend : string;  (* requested backend configuration *)
  backend_runs : backend_run list;
  wcet : int;
  bcet : int;
  verdict : confidence;
  holes : hole list;
  diagnostics : Diag.t list;
  phase_seconds : (phase * float) list;
}

let span_name = function
  | Decode -> "decode"
  | Loop_value -> "value"
  | Cache -> "cache"
  | Pipeline -> "pipeline"
  | Path -> "path"

(* [span] overrides the trace-span name when one phase covers several
   sub-steps (the Cache phase times both classification and persistence). *)
let timed ?span phases phase f =
  let name = match span with Some s -> s | None -> span_name phase in
  Trace.with_span ~cat:"analyzer" name (fun () ->
      let t0 = Wcet_util.Mono_clock.now () in
      let result = f () in
      let dt = Wcet_util.Mono_clock.now () -. t0 in
      phases := (phase, dt) :: !phases;
      result)

(* A fatal problem: record the diagnostic and abort with everything
   collected so far. *)
let fatal c phase ~code ?loc ?hint fmt =
  Format.kasprintf
    (fun message ->
      Metrics.incr m_failures 1;
      Diag.add c (Diag.make ?hint ?loc Diag.Error phase ~code message);
      raise (Analysis_failed (Diag.items c)))
    fmt

let warn c phase ~code ?loc ?hint fmt =
  Format.kasprintf
    (fun message -> Diag.add c (Diag.make ?hint ?loc Diag.Warning phase ~code message))
    fmt

(* Translate the annotation set into a resolver. Unknown function names are
   degraded to warnings: the offending target is dropped (the call site then
   either resolves from the remaining names or becomes an analysis hole). *)
let resolver_of_annot c program (annot : Annot.t) =
  let call_targets =
    List.filter_map
      (fun (site, names) ->
        let addrs =
          List.filter_map
            (fun name ->
              match Program.find_function program name with
              | Some f -> Some f.Program.entry
              | None ->
                warn c Diag.Annot ~code:"W0401" ~loc:(Diag.at_addr site)
                  "calltargets annotation names unknown function %s (ignored)" name;
                None)
            names
        in
        if addrs = [] then None else Some (site, addrs))
      annot.Annot.call_targets
  in
  let jump_targets =
    if annot.Annot.setjmp_auto then begin
      let continuations = Resolver.scan_setjmp_continuations program in
      (* every indirect jump site may target any setjmp continuation *)
      Some continuations
    end
    else None
  in
  let base = Resolver.auto program in
  let base =
    Resolver.with_overrides ~call_targets ~recursion_depths:annot.Annot.recursion_depths base
  in
  match jump_targets with
  | None -> base
  | Some continuations ->
    {
      base with
      Resolver.jump_targets =
        (fun ~site ~block ->
          match base.Resolver.jump_targets ~site ~block with
          | Some t -> Some t
          | None -> if continuations = [] then None else Some continuations);
    }

let assumes_of_annot c program (annot : Annot.t) =
  let user =
    List.filter_map
      (fun (sym, lo, hi) ->
        match Program.symbol_opt program sym with
        | Some addr -> Some (addr, Aval.interval lo hi)
        | None ->
          warn c Diag.Annot ~code:"W0402" "assume annotation names unknown symbol %s (ignored)"
            sym;
          None)
      annot.Annot.assumes
  in
  (* Compiler-runtime invariant: the heap bump pointer starts at its linked
     initial value. It is internal to the generated code - unlike user
     globals, no test harness pokes it - so treating the initializer as
     known is sound and keeps early heap blocks at known addresses. *)
  let runtime =
    match Program.symbol_opt program "__heap_ptr" with
    | Some addr ->
      [ (addr, Aval.const (Pred32_memory.Image.read_word program.Program.image addr)) ]
    | None -> []
  in
  runtime @ user

let region_hints_of_annot c program (annot : Annot.t) func =
  match List.assoc_opt func annot.Annot.memory_regions with
  | None -> None
  | Some names -> (
    match
      List.filter_map
        (fun name ->
          match Memory_map.find_by_name program.Program.map name with
          | Some r -> Some r
          | None ->
            warn c Diag.Annot ~code:"W0403" ~loc:(Diag.in_func func)
              "memory annotation names unknown region %s (ignored)" name;
            None)
        names
    with
    | [] -> None
    | rs -> Some rs)

(* Region hints resolved once per function of the graph, up front: the
   cache transfer runs on worker domains under the summary engine, where
   resolving lazily would race on the diagnostic collector — and would
   emit one W0403 per node instead of one per function. *)
let region_hint_table c program annot (graph : Supergraph.t) =
  let tbl : (string, Pred32_memory.Region.t list option) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun (n : Supergraph.node) ->
      let f = n.Supergraph.func in
      if not (Hashtbl.mem tbl f) then
        Hashtbl.add tbl f (region_hints_of_annot c program annot f))
    graph.Supergraph.nodes;
  fun f -> Option.join (Hashtbl.find_opt tbl f)

(* Nodes matching a place: block entries at an address, or entry blocks of a
   function (any context). *)
let nodes_of_place c (graph : Supergraph.t) program place =
  match place with
  | Annot.At_addr addr ->
    Array.to_list graph.Supergraph.nodes
    |> List.filter_map (fun (n : Supergraph.node) ->
           if n.Supergraph.block.Func_cfg.entry = addr then Some n.Supergraph.id else None)
  | Annot.In_function name -> (
    match Program.find_function program name with
    | None ->
      warn c Diag.Annot ~code:"W0401" "flow-fact annotation names unknown function %s (ignored)"
        name;
      []
    | Some f ->
      Array.to_list graph.Supergraph.nodes
      |> List.filter_map (fun (n : Supergraph.node) ->
             if n.Supergraph.block.Func_cfg.entry = f.Program.entry then Some n.Supergraph.id
             else None))

let loop_matches_place (graph : Supergraph.t) program (loops : Loops.info) li place =
  let header = graph.Supergraph.nodes.(loops.Loops.loops.(li).Loops.header) in
  match place with
  | Annot.At_addr addr -> header.Supergraph.block.Func_cfg.entry = addr
  | Annot.In_function name ->
    ignore program;
    header.Supergraph.func = name

let facts_of_annot c graph program (annot : Annot.t) =
  List.filter_map
    (fun fact ->
      match fact with
      | Annot.Max_count (place, bound) -> (
        match nodes_of_place c graph program place with
        | [] -> None
        | nodes ->
          Some
            {
              Ipet.fact_coeffs = List.map (fun n -> (n, 1)) nodes;
              fact_bound = bound;
              fact_label =
                (match place with
                | Annot.At_addr a -> Printf.sprintf "maxcount at 0x%x" a
                | Annot.In_function f -> Printf.sprintf "maxcount %s" f);
            })
      | Annot.Exclusive places -> (
        match
          List.concat_map
            (fun p -> List.map (fun n -> (n, 1)) (nodes_of_place c graph program p))
            places
        with
        | [] -> None
        | coeffs -> Some { Ipet.fact_coeffs = coeffs; fact_bound = 1; fact_label = "exclusive paths" }))
    annot.Annot.flow_facts

(* Best-case bound: the shortest feasible walk from entry to a halting
   node, weighted by the optimistic per-block times. Weights are positive,
   so Dijkstra's shortest walk is a sound lower bound even through cycles
   (taking a cycle never shortens a walk). *)
let best_case_bound (value : Analysis.result) (timing : Block_timing.t) =
  let graph = value.Analysis.graph in
  let n = Array.length graph.Supergraph.nodes in
  let dist = Array.make n max_int in
  let visited = Array.make n false in
  let entry = graph.Supergraph.entry in
  dist.(entry) <- timing.Block_timing.bcet.(entry);
  let rec loop () =
    (* linear-scan Dijkstra: graphs are small *)
    let u = ref (-1) in
    for v = 0 to n - 1 do
      if (not visited.(v)) && dist.(v) < max_int && (!u < 0 || dist.(v) < dist.(!u)) then
        u := v
    done;
    if !u >= 0 then begin
      let u = !u in
      visited.(u) <- true;
      List.iter
        (fun (_, v) ->
          let w = dist.(u) + timing.Block_timing.bcet.(v) in
          if w < dist.(v) then dist.(v) <- w)
        (Analysis.feasible_successors value u);
      loop ()
    end
  in
  loop ();
  let best = ref max_int in
  for v = 0 to n - 1 do
    if dist.(v) < !best && Analysis.feasible_successors value v = [] then best := dist.(v)
  done;
  if !best = max_int then 0 else !best

let build_error_code msg =
  let contains affix =
    let al = String.length affix and ml = String.length msg in
    let rec go i = i + al <= ml && (String.sub msg i al = affix || go (i + 1)) in
    go 0
  in
  if contains "recursi" then
    ("E0202", Some "recursion <function> depth <n>")
  else ("E0201", None)

(* Pre-validate loop-bound annotation places so a bogus function name in a
   loop annotation surfaces as a diagnostic instead of silently never
   matching. *)
let validate_loop_places c program (annot : Annot.t) =
  List.iter
    (fun (place, _) ->
      match place with
      | Annot.In_function name ->
        if Program.find_function program name = None then
          warn c Diag.Annot ~code:"W0401"
            "loop-bound annotation names unknown function %s (ignored)" name
      | Annot.At_addr _ -> ())
    annot.Annot.loop_bounds

let rec analyze_inner ?(hw = Hw_config.default) ?(annot = Annot.empty)
    ?(strategy = Wcet_util.Fixpoint.Rpo) ?(engine = Summary)
    ?(domain = Analysis.Interval) ?(path_backend = Path_analysis.Portfolio) ?cancel program =
  let engine = if strategy <> Wcet_util.Fixpoint.Rpo then Whole_program else engine in
  (* The token reaches the value/cache fixpoints (polled per transfer); the
     remaining phases poll it at their boundary so a deadline that expires
     between fixpoints still cancels before the next phase starts. *)
  let check_cancel () =
    match cancel with
    | Some c when c () -> raise Wcet_util.Fixpoint.Cancelled
    | Some _ | None -> ()
  in
  let c = Diag.collector () in
  let phases = ref [] in
  let holes = ref [] in
  let resolver = resolver_of_annot c program annot in
  let assumes = assumes_of_annot c program annot in
  validate_loop_places c program annot;
  let graph =
    timed phases Decode (fun () ->
        try Resolve_iter.build_graceful ~resolver ~assumes program
        with Supergraph.Build_error msg ->
          let code, hint = build_error_code msg in
          fatal c Diag.Decode ~code ?hint "%s: %s" (phase_name Decode) msg)
  in
  (* Remaining unresolved indirect control flow: analysis holes, one
     diagnostic per distinct site. *)
  let seen_sites = Hashtbl.create 4 in
  List.iter
    (fun (nid, site) ->
      if not (Hashtbl.mem seen_sites site) then begin
        Hashtbl.add seen_sites site ();
        let func = graph.Supergraph.nodes.(nid).Supergraph.func in
        holes := Hole_call { site; func } :: !holes;
        warn c Diag.Decode ~code:"W0301"
          ~loc:(Diag.at_addr ~func site)
          ~hint:(Printf.sprintf "calltargets at 0x%x = <function>, <function>" site)
          "indirect call cannot be resolved; the callee is excluded from the bound"
      end)
    graph.Supergraph.unresolved_calls;
  List.iter
    (fun site ->
      let func =
        match Program.function_at program site with
        | Some f -> f.Program.name
        | None -> "?"
      in
      holes := Hole_jump { site; func } :: !holes;
      warn c Diag.Decode ~code:"W0304"
        ~loc:(Diag.at_addr ~func site)
        ~hint:"setjmp auto   # if the jump implements longjmp"
        "indirect jump cannot be resolved; execution beyond it is excluded from the bound")
    graph.Supergraph.unresolved_jumps;
  let loops = Loops.analyze graph in
  if Wcet_obs.Obs.on () then
    Metrics.set m_scc_count
      (Wcet_cfg.Callgraph.scc_count (Wcet_cfg.Callgraph.of_supergraph graph));
  (* Per-function summary rows from the persistent cache: components whose
     members all carry rows recorded under the inputs delivered this run
     are applied without re-transferring a node. *)
  let slices =
    match engine with
    | Summary -> Report_cache.load_slices ~hw ~annot ~assumes graph
    | Whole_program -> None
  in
  (* Under a relational domain the value_accesses precision counters are
     published once, from whichever result ends up final (escalated or
     not); under the interval domain the run publishes as before. *)
  let publish = domain = Analysis.Interval in
  let value, vinfo, derived_bounds =
    timed phases Loop_value (fun () ->
        match
          let value, vinfo =
            match engine with
            | Summary ->
              let value, vinfo =
                Analysis.run_scheduled ~assumes
                  ?slice:(Option.map Report_cache.value_slice slices)
                  ?cancel ~publish graph loops
              in
              (value, Some vinfo)
            | Whole_program ->
              (Analysis.run ~strategy ~assumes ?cancel ~publish graph loops, None)
          in
          (value, vinfo, Loop_bounds.analyze value loops)
        with
        | result -> result
        | exception Failure msg -> fatal c Diag.Loop_value ~code:"E0203" "%s" msg)
  in
  (* ---- Octagon escalation --------------------------------------------
     The interval pass above ran everywhere. Under [Octagon]/[Auto], the
     functions whose interval results left imprecise accesses or
     input-dependent/aliased loop-bound causes are re-solved under the
     interval x octagon reduced product, and the refined result replaces
     the base one for every downstream phase (cache, pipeline, IPET). The
     refinement is a per-node meet with the base states, so it can only
     tighten — asserted under WCET_VALUE_PARANOID below. *)
  let base_value = value and base_bounds = derived_bounds in
  let funcs_to_escalate () =
    let tbl : (string, unit) Hashtbl.t = Hashtbl.create 8 in
    (match domain with
    | Analysis.Interval -> ()
    | Analysis.Octagon ->
      Array.iter
        (fun (n : Supergraph.node) -> Hashtbl.replace tbl n.Supergraph.func ())
        graph.Supergraph.nodes
    | Analysis.Auto ->
      Array.iteri
        (fun nid accs ->
          if
            List.exists
              (fun (a : Analysis.access) -> Aval.singleton a.Analysis.addr = None)
              accs
          then Hashtbl.replace tbl graph.Supergraph.nodes.(nid).Supergraph.func ())
        value.Analysis.accesses;
      Array.iteri
        (fun li verdict ->
          match verdict with
          | Loop_bounds.Unbounded
              ((Loop_bounds.Input_dependent | Loop_bounds.Aliased_counter), _) ->
            let hn = graph.Supergraph.nodes.(loops.Loops.loops.(li).Loops.header) in
            Hashtbl.replace tbl hn.Supergraph.func ()
          | _ -> ())
        derived_bounds.Loop_bounds.per_loop);
    List.sort compare (Hashtbl.fold (fun f () acc -> f :: acc) tbl [])
  in
  let escalation, value, derived_bounds, vinfo =
    match funcs_to_escalate () with
    | [] ->
      if not publish then Analysis.publish_access_metrics value.Analysis.accesses;
      (None, value, derived_bounds, vinfo)
    | funcs -> (
      match
        timed ~span:"octagon" phases Loop_value (fun () ->
            let esc = Analysis.escalate ~assumes ?cancel ~funcs value loops in
            let refined =
              Loop_bounds.analyze ~rel:esc.Analysis.esc_rel esc.Analysis.esc_result loops
            in
            (esc, refined))
      with
      | exception Failure msg ->
        (* Non-convergence within the budget: keep the sound interval
           result; the escalation is an optimisation, never a requirement. *)
        warn c Diag.Loop_value ~code:"W0501"
          "octagon escalation abandoned (%s); keeping the interval result" msg;
        Analysis.publish_access_metrics value.Analysis.accesses;
        (None, value, derived_bounds, vinfo)
      | esc, refined_bounds ->
        let refined_value = esc.Analysis.esc_result in
        (* Merge verdicts: a loop the interval pass bounded keeps the
           tighter of the two bounds; one it could not bound is discharged
           by a relational bound. *)
        let discharged = ref [] in
        let per_loop =
          Array.mapi
            (fun li refined ->
              match (derived_bounds.Loop_bounds.per_loop.(li), refined) with
              | Loop_bounds.Bounded a, Loop_bounds.Bounded b -> Loop_bounds.Bounded (min a b)
              | Loop_bounds.Unbounded (cause, _), (Loop_bounds.Bounded _ as b) ->
                let hn = graph.Supergraph.nodes.(loops.Loops.loops.(li).Loops.header) in
                discharged :=
                  ( hn.Supergraph.block.Func_cfg.entry,
                    hn.Supergraph.func,
                    Loop_bounds.cause_name cause )
                  :: !discharged;
                b
              | base, _ -> base)
            refined_bounds.Loop_bounds.per_loop
        in
        (* Accesses whose address interval strictly tightened: the material
           for the auditor's [discharged-by: octagon] marks. *)
        let tightened = ref [] in
        Array.iteri
          (fun nid base_accs ->
            let refined_accs = refined_value.Analysis.accesses.(nid) in
            List.iter
              (fun (b : Analysis.access) ->
                match
                  List.find_opt
                    (fun (r : Analysis.access) -> r.Analysis.insn_index = b.Analysis.insn_index)
                    refined_accs
                with
                | Some r when r.Analysis.addr <> b.Analysis.addr ->
                  tightened :=
                    ( b.Analysis.insn_addr,
                      graph.Supergraph.nodes.(nid).Supergraph.func,
                      b.Analysis.addr,
                      r.Analysis.addr )
                    :: !tightened
                | _ -> ())
              base_accs)
          value.Analysis.accesses;
        let info =
          {
            ei_domain = Analysis.domain_name domain;
            ei_funcs = esc.Analysis.esc_funcs;
            ei_transfers = esc.Analysis.esc_transfers;
            ei_slots = esc.Analysis.esc_slots;
            ei_discharged_loops = List.rev !discharged;
            ei_tightened_accesses = List.rev !tightened;
          }
        in
        Diag.add c
          (Diag.make Diag.Info Diag.Loop_value ~code:"W0501"
             (Printf.sprintf
                "value analysis escalated to the octagon domain for %d function(s): %s"
                (List.length info.ei_funcs)
                (String.concat ", " info.ei_funcs)));
        Analysis.publish_access_metrics refined_value.Analysis.accesses;
        (* [vinfo] is dropped: summary slices persist interval-domain facts
           only, and the refined states must never reach a warm interval
           run (see Report_cache). *)
        (Some info, refined_value, { Loop_bounds.per_loop }, None))
  in
  (* Paranoid escalation cross-check, part 1: the refined states must be
     leq the interval states at every node (the meet guarantees it by
     construction — this asserts the guarantee held). *)
  if escalation <> None && value_paranoid () then begin
    let leq_opt a b =
      match (a, b) with
      | None, _ -> true
      | Some _, None -> false
      | Some a, Some b -> Wcet_value.State.leq a b
    in
    Array.iteri
      (fun i _ ->
        if
          (not (leq_opt value.Analysis.node_in.(i) base_value.Analysis.node_in.(i)))
          || not (leq_opt value.Analysis.node_out.(i) base_value.Analysis.node_out.(i))
        then
          fatal c Diag.Loop_value ~code:"E0503"
            ~loc:(Diag.in_func graph.Supergraph.nodes.(i).Supergraph.func)
            "octagon-refined value state is not below the interval state at node %d" i)
      graph.Supergraph.nodes;
    Array.iteri
      (fun li verdict ->
        match (base_bounds.Loop_bounds.per_loop.(li), verdict) with
        | Loop_bounds.Bounded a, Loop_bounds.Bounded b when b > a ->
          fatal c Diag.Loop_value ~code:"E0503"
            "octagon loop bound %d exceeds the interval bound %d for loop %d" b a li
        | Loop_bounds.Bounded _, Loop_bounds.Unbounded _ ->
          fatal c Diag.Loop_value ~code:"E0503"
            "octagon escalation lost the interval bound of loop %d" li
        | _ -> ())
      derived_bounds.Loop_bounds.per_loop
  end;
  (* Overlay annotation loop bounds on the derived verdicts. *)
  let effective_bounds = ref [] in
  let unbounded_loops = ref [] in
  Array.iteri
    (fun li verdict ->
      let annotated =
        List.filter_map
          (fun (place, bound) ->
            if loop_matches_place graph program loops li place then Some bound else None)
          annot.Annot.loop_bounds
      in
      let annotated = match annotated with [] -> None | bs -> Some (List.fold_left min max_int bs) in
      match (verdict, annotated) with
      | Loop_bounds.Bounded b, Some a -> effective_bounds := (li, min b a) :: !effective_bounds
      | Loop_bounds.Bounded b, None -> effective_bounds := (li, b) :: !effective_bounds
      | Loop_bounds.Unbounded _, Some a -> effective_bounds := (li, a) :: !effective_bounds
      | Loop_bounds.Unbounded (_, reason), None ->
        (* Loops of unreachable code are irrelevant. *)
        if Analysis.reachable value loops.Loops.loops.(li).Loops.header then begin
          unbounded_loops := (li, reason) :: !unbounded_loops;
          (* Degrade: exclude the loop's iterations (back-edge count 0) so
             every other function still gets a bound; the result is partial. *)
          effective_bounds := (li, 0) :: !effective_bounds;
          let hn = graph.Supergraph.nodes.(loops.Loops.loops.(li).Loops.header) in
          let header = hn.Supergraph.block.Func_cfg.entry in
          let func = hn.Supergraph.func in
          holes := Hole_loop { header; func; reason } :: !holes;
          warn c Diag.Loop_value ~code:"W0302"
            ~loc:(Diag.at_addr ~func header)
            ~hint:(Printf.sprintf "loop at 0x%x bound <N>" header)
            "loop cannot be bounded automatically (%s); iterations beyond the first are \
             excluded from the bound"
            reason
        end)
    derived_bounds.Loop_bounds.per_loop;
  let facts = facts_of_annot c graph program annot in
  (* Irreducible regions without user flow facts: degrade to one pass per
     block so the path problem stays bounded; report the hole. *)
  let user_fact_nodes =
    List.concat_map (fun f -> List.map fst f.Ipet.fact_coeffs) facts
  in
  let synthetic_facts =
    List.concat_map
      (fun scc ->
        if List.exists (fun n -> List.mem n user_fact_nodes) scc then []
        else begin
          let func = graph.Supergraph.nodes.(List.hd scc).Supergraph.func in
          let blocks =
            List.sort_uniq compare
              (List.map
                 (fun n -> graph.Supergraph.nodes.(n).Supergraph.block.Func_cfg.entry)
                 scc)
          in
          holes := Hole_irreducible { blocks; func } :: !holes;
          warn c Diag.Loop_value ~code:"W0303"
            ~loc:(Diag.at_addr ~func (List.hd blocks))
            ~hint:
              (String.concat "\n"
                 (List.map (fun a -> Printf.sprintf "maxcount at 0x%x <= <N>" a) blocks))
            "irreducible region (%d blocks) has no automatic bound; limited to one pass per \
             block in the bound"
            (List.length scc);
          List.map
            (fun n ->
              {
                Ipet.fact_coeffs = [ (n, 1) ];
                fact_bound = 1;
                fact_label = "degradation: irreducible region";
              })
            scc
        end)
      loops.Loops.irreducible
  in
  check_cancel ();
  let region_hints = region_hint_table c program annot graph in
  let cache, cinfo =
    (* Cache rows are gated on the value fixpoint: a row is only offered at
       nodes whose value states converged to the ones recorded with it,
       because the cache transfer replays this run's access sets
       (Report_cache.cache_slice). *)
    timed phases Cache (fun () ->
        match engine with
        | Summary ->
          let cache, cinfo =
            Cache_analysis.run_scheduled
              ?slice:(Option.map (fun s -> Report_cache.cache_slice s value) slices)
              ?cancel hw value ~region_hints
          in
          (cache, Some cinfo)
        | Whole_program -> (Cache_analysis.run ~strategy ?cancel hw value ~region_hints, None))
  in
  (* Paranoid cross-check: re-solve whole-program and require semantic
     state equality at every node. Divergence means a summary was applied
     where it should not have been — fail loudly rather than risk an
     unsound bound. *)
  (* (Skipped under an escalation: the states downstream are refined, so a
     whole-program interval solve is no longer the comparison baseline.) *)
  if engine = Summary && paranoid () && escalation = None then begin
    let eq_opt eq a b =
      match (a, b) with
      | None, None -> true
      | Some a, Some b -> eq a b
      | None, Some _ | Some _, None -> false
    in
    let wp_value = Analysis.run ~assumes graph loops in
    let n = Array.length graph.Supergraph.nodes in
    for i = 0 to n - 1 do
      if
        (not
           (eq_opt Wcet_value.Summary.equal_state value.Analysis.node_in.(i)
              wp_value.Analysis.node_in.(i)))
        || not
             (eq_opt Wcet_value.Summary.equal_state value.Analysis.node_out.(i)
                wp_value.Analysis.node_out.(i))
      then
        fatal c Diag.Loop_value ~code:"E0204"
          ~loc:(Diag.in_func graph.Supergraph.nodes.(i).Supergraph.func)
          "summary-engine value state diverges from the whole-program solve at node %d" i
    done;
    let wp_cache = Cache_analysis.run hw wp_value ~region_hints in
    for i = 0 to n - 1 do
      if
        (not
           (eq_opt Cache_analysis.equal_cstate cache.Cache_analysis.node_in.(i)
              wp_cache.Cache_analysis.node_in.(i)))
        || not
             (eq_opt Cache_analysis.equal_cstate cache.Cache_analysis.node_out.(i)
                wp_cache.Cache_analysis.node_out.(i))
      then
        fatal c Diag.Cache ~code:"E0204"
          ~loc:(Diag.in_func graph.Supergraph.nodes.(i).Supergraph.func)
          "summary-engine cache state diverges from the whole-program solve at node %d" i
    done
  end;
  check_cancel ();
  let persistence =
    timed ~span:"persistence" phases Cache (fun () ->
        Wcet_cache.Persistence.compute hw value loops cache)
  in
  let timing =
    timed phases Pipeline (fun () -> Block_timing.compute hw value cache ~persistence)
  in
  check_cancel ();
  let solution, backend_runs =
    timed phases Path (fun () ->
        let spec =
          {
            Ipet.value;
            times = timing.Block_timing.wcet;
            loop_bounds = !effective_bounds;
            facts = facts @ synthetic_facts;
          }
        in
        let backends : (module Path_analysis.BACKEND) list =
          match path_backend with
          | Path_analysis.Ipet -> [ (module Ipet) ]
          | Path_analysis.Csolve -> [ (module Wcet_path.Csolve) ]
          | Path_analysis.Mc -> [ (module Wcet_path.Mc) ]
          | Path_analysis.Portfolio ->
            [ (module Ipet); (module Wcet_path.Csolve); (module Wcet_path.Mc) ]
        in
        let res = Portfolio.run ~paranoid:(path_paranoid ()) ~backends spec loops in
        (* In portfolio mode a budget-exhausted model checker is excluded
           with a warning; a single requested backend failing is fatal. *)
        if path_backend = Path_analysis.Portfolio then
          List.iter
            (fun b ->
              warn c Diag.Path ~code:"W0305"
                "path backend %s is intractable here; the portfolio continues without it" b)
            res.Portfolio.p_intractable;
        (match res.Portfolio.p_disagreements with
        | [] -> ()
        | ds ->
          fatal c Diag.Path ~code:"E0303" "%s: %s" (phase_name Path)
            (String.concat "; " ds));
        match res.Portfolio.p_best with
        | Some (wname, sol) ->
          let runs =
            List.map
              (fun (r : Portfolio.run) ->
                {
                  br_name = r.Portfolio.r_name;
                  br_bound =
                    (match r.Portfolio.r_outcome with
                    | Ok s -> Some s.Ipet.wcet
                    | Error _ -> None);
                  br_error =
                    (match r.Portfolio.r_outcome with
                    | Ok _ -> None
                    | Error e ->
                      Some (e.Path_analysis.err_code, e.Path_analysis.err_detail));
                  br_wall_ms = r.Portfolio.r_wall_ms;
                  br_winner = r.Portfolio.r_name = wname;
                })
              res.Portfolio.p_runs
          in
          (sol, runs)
        | None ->
          let e =
            match
              List.find_opt (fun r -> r.Portfolio.r_name = "ipet") res.Portfolio.p_runs
            with
            | Some { Portfolio.r_outcome = Error e; _ } -> e
            | _ -> (
              match
                List.find_map
                  (fun r ->
                    match r.Portfolio.r_outcome with Error e -> Some e | Ok _ -> None)
                  res.Portfolio.p_runs
              with
              | Some e -> e
              | None -> Path_analysis.internal "no path backend was configured")
          in
          let msg =
            Option.value
              ~default:"path analysis failed"
              (Diag.describe e.Path_analysis.err_code)
          in
          fatal c Diag.Path ~code:e.Path_analysis.err_code
            ~hint:e.Path_analysis.err_detail "%s: %s" (phase_name Path) msg)
  in
  (* Paranoid escalation cross-check, part 2: a full interval re-analysis
     must not produce a smaller bound than the escalated run — relational
     precision may only ever tighten the WCET. Only a [Complete] interval
     bound is comparable: a [Partial] one excludes the very holes (e.g.
     loop iterations beyond the first) the escalation discharged, so it is
     legitimately smaller. *)
  (match escalation with
  | Some _ when value_paranoid () ->
    let base_r =
      analyze_inner ~hw ~annot ~strategy ~engine ~domain:Analysis.Interval ~path_backend
        ?cancel program
    in
    if base_r.verdict = Complete && solution.Ipet.wcet > base_r.wcet then
      fatal c Diag.Path ~code:"E0503"
        "octagon-escalated WCET bound %d exceeds the interval bound %d" solution.Ipet.wcet
        base_r.wcet
  | _ -> ());
  (* [vinfo] is [None] when escalated, so refined states never reach the
     per-function slice store. *)
  (match (vinfo, cinfo) with
  | Some vinfo, Some cinfo ->
    Report_cache.save_slices ~hw ~annot ~assumes value vinfo cache cinfo
  | _ -> ());
  {
    program;
    hw;
    graph;
    loops;
    value;
    escalation;
    derived_bounds;
    effective_bounds = !effective_bounds;
    unbounded_loops = !unbounded_loops;
    cache;
    timing;
    solution;
    path_backend = Path_analysis.choice_name path_backend;
    backend_runs;
    wcet = solution.Ipet.wcet;
    bcet = best_case_bound value timing;
    verdict = (if !holes = [] then Complete else Partial);
    holes = List.rev !holes;
    diagnostics = Diag.items c;
    phase_seconds = List.rev !phases;
  }

let analyze ?(hw = Hw_config.default) ?(annot = Annot.empty)
    ?(strategy = Wcet_util.Fixpoint.Rpo) ?(engine = Summary)
    ?(domain = Analysis.Interval) ?(path_backend = Path_analysis.Portfolio) ?cancel program =
  let engine = if strategy <> Wcet_util.Fixpoint.Rpo then Whole_program else engine in
  let ename = engine_name engine in
  let dname = Analysis.domain_name domain in
  let pname = Path_analysis.choice_name path_backend in
  Trace.with_span ~cat:"analyzer" "analyze" (fun () ->
      let cached =
        if not (Report_cache.enabled ()) then None
        else
          match
            Report_cache.find_report ~hw ~annot ~strategy ~engine:ename ~domain:dname
              ~path:pname program
          with
          | None -> None
          | Some payload -> (
            (* The envelope checksum and version already passed; a decode
               failure here means marshal-layout drift — degrade to a
               recompute, reclassifying the hit as a miss. *)
            match (Marshal.from_string payload 0 : report) with
            | r -> Some r
            | exception _ ->
              Report_cache.invalidate_report ~hw ~annot ~strategy ~engine:ename ~domain:dname
                ~path:pname program;
              None)
      in
      let r =
        match cached with
        | Some r -> r
        | None ->
          let r = analyze_inner ~hw ~annot ~strategy ~engine ~domain ~path_backend ?cancel program in
          if Report_cache.enabled () then
            Report_cache.save_report ~hw ~annot ~strategy ~engine:ename ~domain:dname
              ~path:pname program
              (Marshal.to_string r []);
          r
      in
      Trace.add_attr "nodes" (Trace.Int (Array.length r.graph.Supergraph.nodes));
      Trace.add_attr "loops" (Trace.Int (Array.length r.loops.Loops.loops));
      Trace.add_attr "wcet" (Trace.Int r.wcet);
      (match r.verdict with
      | Complete ->
        Trace.add_attr "verdict" (Trace.Str "complete");
        Metrics.incr m_runs_complete 1
      | Partial ->
        Trace.add_attr "verdict" (Trace.Str "partial");
        Metrics.incr m_runs_partial 1);
      r)

let analyze_modes ?(hw = Hw_config.default) ?(engine = Summary)
    ?(domain = Analysis.Interval) ?(path_backend = Path_analysis.Portfolio) ~base ~modes
    program =
  let oblivious =
    ("(all modes)", analyze ~hw ~engine ~domain ~path_backend ~annot:base program)
  in
  let per_mode =
    List.map
      (fun (name, annot) ->
        ( name,
          analyze ~hw ~engine ~domain ~path_backend ~annot:(Annot.merge base annot) program
        ))
      modes
  in
  oblivious :: per_mode

let pp_hole ppf = function
  | Hole_call { site; func } ->
    Format.fprintf ppf "unresolved call at 0x%x in %s" site func
  | Hole_jump { site; func } ->
    Format.fprintf ppf "unresolved jump at 0x%x in %s" site func
  | Hole_loop { header; func; reason } ->
    Format.fprintf ppf "unbounded loop at 0x%x in %s (%s)" header func reason
  | Hole_irreducible { blocks; func } ->
    Format.fprintf ppf "irreducible region of %d blocks in %s" (List.length blocks) func

let pp_report ppf r =
  (match r.verdict with
  | Complete -> Format.fprintf ppf "@[<v>WCET bound: %d cycles (best-case bound: %d)@," r.wcet r.bcet
  | Partial ->
    Format.fprintf ppf
      "@[<v>WCET bound: %d cycles — PARTIAL: conditional on %d analysis hole(s) (best-case \
       bound: %d)@,"
      r.wcet (List.length r.holes) r.bcet);
  Format.fprintf ppf "graph: %d nodes, %d contexts, %d loops@,"
    (Array.length r.graph.Supergraph.nodes)
    (Array.length r.graph.Supergraph.contexts)
    (Array.length r.loops.Loops.loops);
  (match r.escalation with
  | None -> ()
  | Some e ->
    Format.fprintf ppf
      "octagon escalation: %d function(s), %d transfers, %d slot(s), %d loop(s) discharged, \
       %d access(es) tightened@,"
      (List.length e.ei_funcs) e.ei_transfers (List.length e.ei_slots)
      (List.length e.ei_discharged_loops)
      (List.length e.ei_tightened_accesses));
  (match r.backend_runs with
  | [] | [ _ ] -> ()
  | runs ->
    List.iter
      (fun b ->
        match b.br_bound with
        | Some bound ->
          Format.fprintf ppf "path backend %s: %d cycles, %d ms%s@," b.br_name bound
            b.br_wall_ms
            (if b.br_winner then " (tightest)" else "")
        | None ->
          let code = match b.br_error with Some (code, _) -> code | None -> "?" in
          Format.fprintf ppf "path backend %s: failed (%s), %d ms@," b.br_name code
            b.br_wall_ms)
      runs);
  List.iter (fun h -> Format.fprintf ppf "hole: %a@," pp_hole h) r.holes;
  List.iter
    (fun (li, b) ->
      let hn = r.graph.Supergraph.nodes.(r.loops.Loops.loops.(li).Loops.header) in
      Format.fprintf ppf "loop at 0x%x in %s: bound %d@," hn.Supergraph.block.Func_cfg.entry
        hn.Supergraph.func b)
    r.effective_bounds;
  if r.diagnostics <> [] then Format.fprintf ppf "%a@," Diag.pp_list r.diagnostics;
  List.iter
    (fun (phase, dt) -> Format.fprintf ppf "%s: %.1f ms@," (phase_name phase) (dt *. 1000.))
    r.phase_seconds;
  Format.fprintf ppf "@]"

let hole_to_json = function
  | Hole_call { site; func } ->
    Wcet_diag.Json.Obj
      [ ("kind", String "unresolved-call"); ("site", Int site); ("func", String func) ]
  | Hole_jump { site; func } ->
    Wcet_diag.Json.Obj
      [ ("kind", String "unresolved-jump"); ("site", Int site); ("func", String func) ]
  | Hole_loop { header; func; reason } ->
    Wcet_diag.Json.Obj
      [
        ("kind", String "unbounded-loop");
        ("header", Int header);
        ("func", String func);
        ("reason", String reason);
      ]
  | Hole_irreducible { blocks; func } ->
    Wcet_diag.Json.Obj
      [
        ("kind", String "irreducible-region");
        ("blocks", List (List.map (fun b -> Wcet_diag.Json.Int b) blocks));
        ("func", String func);
      ]

let report_to_json r =
  let open Wcet_diag.Json in
  (* When the observability layer is live, the machine-readable report also
     carries the metric snapshot and the span trace — same Json renderer as
     everything else, no second printer. *)
  let obs_fields =
    if Wcet_obs.Obs.on () then
      [ ("metrics", Metrics.to_json ()); ("trace", Trace.to_json ()) ]
    else []
  in
  Obj
    ([
      ("wcet", Int r.wcet);
      ("bcet", Int r.bcet);
      ("verdict", String (match r.verdict with Complete -> "complete" | Partial -> "partial"));
      ("nodes", Int (Array.length r.graph.Supergraph.nodes));
      ("contexts", Int (Array.length r.graph.Supergraph.contexts));
      ("holes", List (List.map hole_to_json r.holes));
      ( "escalation",
        match r.escalation with
        | None -> Null
        | Some e ->
          let aval_json v =
            match Aval.range v with
            | Some (lo, hi) -> Obj [ ("lo", Int lo); ("hi", Int hi) ]
            | None -> Null
          in
          Obj
            [
              ("domain", String e.ei_domain);
              ("functions", List (List.map (fun f -> String f) e.ei_funcs));
              ("transfers", Int e.ei_transfers);
              ("slots", List (List.map (fun s -> Int s) e.ei_slots));
              ( "discharged_loops",
                List
                  (List.map
                     (fun (addr, func, cause) ->
                       Obj
                         [
                           ("header", Int addr); ("func", String func); ("cause", String cause);
                         ])
                     e.ei_discharged_loops) );
              ( "tightened_accesses",
                List
                  (List.map
                     (fun (addr, func, before, after) ->
                       Obj
                         [
                           ("addr", Int addr);
                           ("func", String func);
                           ("interval", aval_json before);
                           ("octagon", aval_json after);
                         ])
                     e.ei_tightened_accesses) );
            ] );
      ("diagnostics", List (List.map Diag.to_json r.diagnostics));
      ("path_backend", String r.path_backend);
      ( "path_backends",
        List
          (List.map
             (fun b ->
               Obj
                 [
                   ("name", String b.br_name);
                   ("bound", match b.br_bound with Some x -> Int x | None -> Null);
                   ( "error",
                     match b.br_error with
                     | Some (code, detail) ->
                       Obj [ ("code", String code); ("detail", String detail) ]
                     | None -> Null );
                   ("wall_ms", Int b.br_wall_ms);
                   ("winner", Bool b.br_winner);
                 ])
             r.backend_runs) );
      ( "loops",
        List
          (List.map
             (fun (li, b) ->
               let hn = r.graph.Supergraph.nodes.(r.loops.Loops.loops.(li).Loops.header) in
               Obj
                 [
                   ("header", Int hn.Supergraph.block.Func_cfg.entry);
                   ("func", String hn.Supergraph.func);
                   ("bound", Int b);
                 ])
             r.effective_bounds) );
      ( "phases",
        List
          (List.map
             (fun (phase, dt) ->
               Obj [ ("name", String (phase_name phase)); ("seconds", Float dt) ])
             r.phase_seconds) );
    ]
    @ obs_fields)

let failure_to_json ds =
  let open Wcet_diag.Json in
  Obj
    [
      ("wcet", Null);
      ("verdict", String "failed");
      ("diagnostics", List (List.map Diag.to_json ds));
    ]
