module Metrics = Wcet_obs.Metrics

type fact = { fact_coeffs : (int * int) list; fact_bound : int; fact_label : string }

type spec = {
  value : Wcet_value.Analysis.result;
  times : int array;
  loop_bounds : (int * int) list;
  facts : fact list;
}

type solution = { wcet : int; node_counts : int array }
type error = { err_code : string; err_detail : string }

let unbounded d = { err_code = "E0301"; err_detail = d }
let infeasible d = { err_code = "E0302"; err_detail = d }
let intractable d = { err_code = "E0305"; err_detail = d }
let internal d = { err_code = "E0304"; err_detail = d }

module type BACKEND = sig
  val name : string
  val path_sensitive : bool
  val fact_blind : bool
  val exact_witness : bool
  val solve : spec -> Wcet_cfg.Loops.info -> (solution, error) result
end

type choice = Ipet | Mc | Csolve | Portfolio

let choice_name = function
  | Ipet -> "ipet"
  | Mc -> "mc"
  | Csolve -> "csolve"
  | Portfolio -> "portfolio"

let all_choices =
  [ ("ipet", Ipet); ("mc", Mc); ("csolve", Csolve); ("portfolio", Portfolio) ]

let choice_of_string s = List.assoc_opt s all_choices

let check_identity (sol : solution) (times : int array) =
  let total = ref 0 in
  Array.iteri
    (fun v c -> if v < Array.length times then total := !total + (c * times.(v)))
    sol.node_counts;
  if !total = sol.wcet then Ok () else Error (sol.wcet - !total)

(* Per-backend observability. Registered once at module initialization;
   injected test backends fall through to no-ops. *)

let solve_buckets = [| 1; 5; 20; 100; 500; 2000; 10000 |]

let backend_cells =
  List.map
    (fun b ->
      ( b,
        ( Metrics.counter
            ~labels:[ ("backend", b) ]
            ~name:"path_solves" ~help:"Path-analysis problems solved, by backend" (),
          Metrics.histogram
            ~labels:[ ("backend", b) ]
            ~name:"path_solve_ms" ~help:"Path-analysis solve wall time (ms), by backend"
            ~buckets:solve_buckets (),
          Metrics.counter
            ~labels:[ ("backend", b) ]
            ~name:"path_portfolio_wins"
            ~help:"Portfolio runs where this backend supplied the tightest sound bound" () ) ))
    [ "ipet"; "mc"; "csolve" ]

let m_intractable =
  Metrics.counter ~name:"path_mc_intractable"
    ~help:"Model-checking backend runs that hit the exploration budget" ()

let m_disagreements =
  Metrics.counter ~name:"path_disagreements"
    ~help:"Portfolio cross-checks that found backends disagreeing (E0303)" ()

let record_solve ~backend ~ms =
  match List.assoc_opt backend backend_cells with
  | Some (c, h, _) ->
    Metrics.incr c 1;
    Metrics.observe h ms
  | None -> ()

let record_win ~backend =
  match List.assoc_opt backend backend_cells with
  | Some (_, _, w) -> Metrics.incr w 1
  | None -> ()

let record_intractable () = Metrics.incr m_intractable 1
let record_disagreement () = Metrics.incr m_disagreements 1
