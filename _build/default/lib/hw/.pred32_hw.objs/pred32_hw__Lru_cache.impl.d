lib/hw/lru_cache.ml: Array Cache_config List
