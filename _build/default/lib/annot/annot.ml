type place = At_addr of int | In_function of string

type flow_fact = Max_count of place * int | Exclusive of place list

type t = {
  assumes : (string * int * int) list;
  loop_bounds : (place * int) list;
  recursion_depths : (string * int) list;
  call_targets : (int * string list) list;
  setjmp_auto : bool;
  memory_regions : (string * string list) list;
  flow_facts : flow_fact list;
}

let empty =
  {
    assumes = [];
    loop_bounds = [];
    recursion_depths = [];
    call_targets = [];
    setjmp_auto = false;
    memory_regions = [];
    flow_facts = [];
  }

let merge a b =
  {
    assumes = a.assumes @ b.assumes;
    loop_bounds = a.loop_bounds @ b.loop_bounds;
    recursion_depths = a.recursion_depths @ b.recursion_depths;
    call_targets = a.call_targets @ b.call_targets;
    setjmp_auto = a.setjmp_auto || b.setjmp_auto;
    memory_regions = a.memory_regions @ b.memory_regions;
    flow_facts = a.flow_facts @ b.flow_facts;
  }

(* Tiny line-oriented parser; words are whitespace-separated, commas
   separate list items. *)
let tokens_of_line line =
  line
  |> String.map (fun c -> if c = ',' then ' ' else c)
  |> String.split_on_char ' '
  |> List.filter (fun s -> s <> "")

let parse_int s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "bad integer %S" s)

let ( let* ) r f = Result.bind r f

let parse_place = function
  | "at" :: addr :: rest ->
    let* a = parse_int addr in
    Ok (At_addr a, rest)
  | "in" :: name :: rest | name :: rest -> Ok (In_function name, rest)
  | [] -> Error "missing place"

let parse_line acc line_num line =
  let fail msg = Error (Printf.sprintf "line %d: %s" line_num msg) in
  match tokens_of_line line with
  | [] -> Ok acc
  | "assume" :: sym :: "in" :: "[" :: lo :: hi :: "]" :: [] ->
    let* lo = parse_int lo in
    let* hi = parse_int hi in
    Ok { acc with assumes = (sym, lo, hi) :: acc.assumes }
  | [ "assume"; sym; "in"; range ] -> (
    (* accept the compact form [lo hi] already split by commas: "…in [0 100]"
       arrives as ["[0"; "100]"]; handle "assume x in [lo,hi]" generically *)
    match String.split_on_char ';' range with
    | _ -> fail (Printf.sprintf "cannot parse range %S (write: assume %s in [ lo hi ])" range sym))
  | [ "assume"; sym; "="; v ] ->
    let* v = parse_int v in
    Ok { acc with assumes = (sym, v, v) :: acc.assumes }
  | "assume" :: sym :: "in" :: rest -> (
    (* tolerate bracket glued to numbers: [0 100] -> ["[0"; "100]"] *)
    let clean s = String.concat "" (String.split_on_char '[' s |> List.concat_map (String.split_on_char ']')) in
    match List.map clean rest |> List.filter (fun s -> s <> "") with
    | [ lo; hi ] ->
      let* lo = parse_int lo in
      let* hi = parse_int hi in
      Ok { acc with assumes = (sym, lo, hi) :: acc.assumes }
    | _ -> fail "expected: assume <sym> in [lo, hi]")
  | [ "loop"; "in"; func; "bound"; n ] ->
    let* n = parse_int n in
    Ok { acc with loop_bounds = (In_function func, n) :: acc.loop_bounds }
  | [ "loop"; "at"; addr; "bound"; n ] ->
    let* a = parse_int addr in
    let* n = parse_int n in
    Ok { acc with loop_bounds = (At_addr a, n) :: acc.loop_bounds }
  | [ "recursion"; func; "depth"; n ] ->
    let* n = parse_int n in
    Ok { acc with recursion_depths = (func, n) :: acc.recursion_depths }
  | "calltargets" :: "at" :: addr :: "=" :: targets ->
    let* a = parse_int addr in
    if targets = [] then fail "empty call target list"
    else Ok { acc with call_targets = (a, targets) :: acc.call_targets }
  | [ "setjmp"; "auto" ] -> Ok { acc with setjmp_auto = true }
  | "memory" :: func :: "=" :: regions ->
    if regions = [] then fail "empty region list"
    else Ok { acc with memory_regions = (func, regions) :: acc.memory_regions }
  | "maxcount" :: rest -> (
    let* place, rest = parse_place rest in
    match rest with
    | [ "<="; n ] ->
      let* n = parse_int n in
      Ok { acc with flow_facts = Max_count (place, n) :: acc.flow_facts }
    | _ -> fail "expected: maxcount <place> <= n")
  | "exclusive" :: places ->
    if List.length places < 2 then fail "exclusive needs at least two places"
    else
      Ok
        {
          acc with
          flow_facts = Exclusive (List.map (fun p -> In_function p) places) :: acc.flow_facts;
        }
  | tok :: _ -> fail (Printf.sprintf "unknown annotation %S" tok)

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go acc i = function
    | [] -> Ok acc
    | line :: rest ->
      let line = String.trim line in
      if line = "" || String.length line > 0 && line.[0] = '#' then go acc (i + 1) rest
      else (
        match parse_line acc i line with
        | Ok acc -> go acc (i + 1) rest
        | Error _ as e -> e)
  in
  go empty 1 lines

let pp_place ppf = function
  | At_addr a -> Format.fprintf ppf "at 0x%x" a
  | In_function f -> Format.fprintf ppf "in %s" f

let pp ppf t =
  List.iter (fun (s, lo, hi) -> Format.fprintf ppf "assume %s in [%d, %d]@," s lo hi) t.assumes;
  List.iter (fun (p, n) -> Format.fprintf ppf "loop %a bound %d@," pp_place p n) t.loop_bounds;
  List.iter (fun (f, d) -> Format.fprintf ppf "recursion %s depth %d@," f d) t.recursion_depths;
  List.iter
    (fun (a, ts) -> Format.fprintf ppf "calltargets at 0x%x = %s@," a (String.concat ", " ts))
    t.call_targets;
  if t.setjmp_auto then Format.fprintf ppf "setjmp auto@,";
  List.iter
    (fun (f, rs) -> Format.fprintf ppf "memory %s = %s@," f (String.concat ", " rs))
    t.memory_regions;
  List.iter
    (fun fact ->
      match fact with
      | Max_count (p, n) -> Format.fprintf ppf "maxcount %a <= %d@," pp_place p n
      | Exclusive ps ->
        Format.fprintf ppf "exclusive %s@,"
          (String.concat ", " (List.map (Format.asprintf "%a" pp_place) ps)))
    t.flow_facts
