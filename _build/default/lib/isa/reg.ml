type t = int

let of_int i =
  assert (i >= 0 && i <= 15);
  i

let to_int r = r
let equal = Int.equal
let compare = Int.compare
let zero = 0
let rv = 1
let fp = 12
let sp = 13
let lr = 14
let all = List.init 16 (fun i -> i)

let temporaries =
  let reserved = [ zero; fp; sp; lr ] in
  List.filter (fun r -> not (List.mem r reserved)) all

let name r =
  match r with
  | 12 -> "fp"
  | 13 -> "sp"
  | 14 -> "lr"
  | _ -> "r" ^ string_of_int r

let pp ppf r = Format.pp_print_string ppf (name r)
