(** Watch mode: a polling mtime/digest scanner with debounce.

    The daemon polls a directory for MiniC ([.mc]) and assembly ([.s])
    sources. A file whose content digest changed is re-analyzed — through
    the incremental summary path, so the warm store makes unchanged
    functions free — once its content has been stable for the debounce
    window (rapid editor save bursts coalesce into one analysis). Only the
    {e delta} is streamed to subscribed clients: changed functions (by
    code-byte digest), bound drift, and new/discharged findings.

    The module is deliberately passive: {!poll} does one scan and returns
    the events to publish; the server owns the thread and the cadence. *)

module Json := Wcet_diag.Json

(** [analyze path] produces the fresh report, or the diagnostics of a
    failed analysis. Must not raise: the server wraps its classifier
    around the real analysis (an unreadable/vanishing file may simply
    return [Error]). *)
type analyze = string -> (Wcet_core.Analyzer.report, Wcet_diag.Diag.t list) result

type t

(** [create ~dir ~debounce_s ~analyze] — no I/O happens here; the first
    {!poll} is the baseline scan (analyzed silently, no events). *)
val create : dir:string -> debounce_s:float -> analyze:analyze -> t

(** One scan. Returned events are [{"event": ..., "path": ..., ...}]
    objects ({!Proto.event}):
    - ["change"]: wcet/old_wcet/drift, verdict, changed_functions,
      new_findings (full diagnostics), discharged_findings (code+func)
    - ["analysis-failed"]: the failure diagnostics
    - ["vanished"]: the file disappeared or became unreadable (W0701)

    [now] is the monotonic time used for debouncing (injectable so tests
    need not sleep). *)
val poll : ?now:float -> t -> Json.t list

(** Per-function digests of a program's code bytes, exposed for tests. *)
val function_digests : Pred32_asm.Program.t -> (string * string) list
