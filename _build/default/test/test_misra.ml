(* MISRA checker tests: every rule on a minimal violating program and its
   clean counterpart, plus the whole-corpus cross-check (conforming
   variants flag nothing for their rule; violating variants flag it). *)

module Checker = Misra.Checker
module Compile = Minic.Compile
module Corpus = Wcet_corpus.Corpus

let rules_hit source =
  Checker.check (Compile.frontend_with_runtime source)
  |> List.filter (fun (v : Checker.violation) ->
         not (String.length v.Checker.func > 1 && String.sub v.Checker.func 0 2 = "__"))
  |> List.map (fun (v : Checker.violation) -> Checker.rule_name v.Checker.rule)
  |> List.sort_uniq compare

let check_flags name expected source =
  Alcotest.(check (list string)) name expected (rules_hit source)

let test_13_4 () =
  check_flags "float for" [ "13.4" ]
    "int main() { float f; int n; n = 0; for (f = 0.0; f < 4.0; f = f + 1.0) { n = n + 1; } return n; }";
  check_flags "int for clean" []
    "int main() { int i; int n; n = 0; for (i = 0; i < 4; i = i + 1) { n = n + 1; } return n; }";
  (* float arithmetic outside loop control is allowed by 13.4 *)
  check_flags "float body clean" []
    "int main() { int i; float x; x = 0.0; for (i = 0; i < 4; i = i + 1) { x = x + 1.5; } return (int)x; }"

let test_13_6 () =
  check_flags "counter bump" [ "13.6" ]
    "int g; int main() { int i; int s; s = 0; for (i = 0; i < 8; i = i + 1) { if (g) { i = i + 1; } s = s + 1; } return s; }";
  check_flags "address taken" [ "13.6" ]
    "void f(int *p) { *p = 0; } int main() { int i; int s; s = 0; for (i = 0; i < 8; i = i + 1) { f(&i); s = s + 1; } return s; }";
  check_flags "clean loop" []
    "int main() { int i; int s; s = 0; for (i = 0; i < 8; i = i + 1) { s = s + i; } return s; }"

let test_14_1 () =
  check_flags "code after return" [ "14.1" ]
    "int g; int main() { return 1; g = 2; }";
  check_flags "code after break" [ "14.1" ]
    "int g; int main() { int i; for (i = 0; i < 4; i = i + 1) { break; g = 9; } return i; }";
  check_flags "label after goto ok" [ "14.4" ]
    "int main() { int x; x = 1; goto out; out: return x; }"

let test_14_4_14_5 () =
  check_flags "goto" [ "14.4" ] "int main() { goto l; l: return 0; }";
  check_flags "continue" [ "14.5" ]
    "int main() { int i; int s; s = 0; for (i = 0; i < 4; i = i + 1) { if (i == 2) { continue; } s = s + i; } return s; }"

let test_16_1_16_2 () =
  check_flags "varargs" [ "16.1" ]
    "int sum(int n, ...) { return __va_arg(0); } int main() { return sum(1, 5); }";
  check_flags "direct recursion" [ "16.2" ]
    "int f(int n) { if (n < 1) { return 0; } return f(n - 1); } int main() { return f(3); }"

let test_16_2_mutual () =
  check_flags "mutual recursion" [ "16.2" ]
    "int f(int n) { if (n < 1) { return 0; } return g(n - 1); } int g(int n) { return f(n); } int main() { return f(3); }"

let test_20_4_20_7 () =
  check_flags "malloc" [ "20.4" ] "int main() { int *p; p = malloc(8); *p = 1; return *p; }";
  check_flags "setjmp" [ "20.7" ]
    "int buf[3]; int main() { if (__setjmp(buf)) { return 1; } return 0; }";
  check_flags "longjmp" [ "20.7" ]
    "int buf[3]; int main() { int r; r = __setjmp(buf); if (r == 0) { __longjmp(buf, 1); } return r; }"

let test_impact_text () =
  List.iter
    (fun rule ->
      Alcotest.(check bool)
        (Checker.rule_name rule ^ " has impact text")
        true
        (String.length (Checker.wcet_impact rule) > 20))
    Checker.all_rules

(* Whole corpus: each rule entry's violating variant flags its own rule;
   the conforming variant does not. *)
let test_corpus_consistency () =
  List.iter
    (fun (e : Corpus.entry) ->
      let conf = rules_hit e.Corpus.conforming.Corpus.source in
      let viol = rules_hit e.Corpus.violating.Corpus.source in
      Alcotest.(check bool)
        (e.Corpus.id ^ " conforming is clean of its rule")
        false (List.mem e.Corpus.id conf);
      Alcotest.(check bool)
        (e.Corpus.id ^ " violating flags its rule")
        true (List.mem e.Corpus.id viol))
    Corpus.rule_entries

let () =
  (* The 16.2 prototype note: remove the unused-check placeholder by running
     the mutual test separately. *)
  Alcotest.run "misra"
    [
      ( "rules",
        [
          Alcotest.test_case "13.4 float loop control" `Quick test_13_4;
          Alcotest.test_case "13.6 counter modification" `Quick test_13_6;
          Alcotest.test_case "14.1 unreachable" `Quick test_14_1;
          Alcotest.test_case "14.4 / 14.5 goto, continue" `Quick test_14_4_14_5;
          Alcotest.test_case "16.1 / 16.2 varargs, recursion" `Quick test_16_1_16_2;
          Alcotest.test_case "16.2 mutual recursion" `Quick test_16_2_mutual;
          Alcotest.test_case "20.4 / 20.7 malloc, setjmp" `Quick test_20_4_20_7;
          Alcotest.test_case "impact summaries" `Quick test_impact_text;
        ] );
      ("corpus", [ Alcotest.test_case "entries flag their rules" `Quick test_corpus_consistency ]);
    ]
