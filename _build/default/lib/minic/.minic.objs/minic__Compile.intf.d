lib/minic/compile.mli: Codegen Pred32_asm Pred32_memory Tast
