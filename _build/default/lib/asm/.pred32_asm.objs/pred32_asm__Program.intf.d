lib/asm/program.mli: Format Pred32_isa Pred32_memory
