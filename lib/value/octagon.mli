(** Octagon abstract domain: difference-bound matrices over [±x ±y <= c]
    constraints on a fixed set of integer variables (Mine's encoding), used
    by the escalation pass of {!Analysis} to recover relations the interval
    domain loses at joins and widenings.

    Soundness under 32-bit wraparound is the caller's contract: a variable
    may only participate in constraints while its companion interval proves
    the concrete value lies in [0, 2^31) — the range where unsigned machine
    order and mathematical order coincide — and must be {!forget}-ed the
    moment that proof lapses. Strong closure is a precision device only:
    every stored constraint is individually true, so reading a partially
    closed matrix merely loses precision, never soundness. *)

type t

(** [top ?thresholds dim] is the unconstrained octagon over [dim]
    variables. [thresholds] (sorted ascending) are the widening landing
    points shared by every derived state. *)
val top : ?thresholds:int array -> int -> t

val bottom : ?thresholds:int array -> int -> t
val is_bot : t -> bool
val dim : t -> int

(** {2 Constraints} — all sound tightenings; bottom passes through. *)

(** [add_diff t ~u ~v c] adds [x_u - x_v <= c] with incremental closure. *)
val add_diff : t -> u:int -> v:int -> int -> t

(** [add_sum_ub t ~u ~v c] adds [x_u + x_v <= c]. *)
val add_sum_ub : t -> u:int -> v:int -> int -> t

(** [add_sum_lb t ~u ~v c] adds [-x_u - x_v <= c]. *)
val add_sum_lb : t -> u:int -> v:int -> int -> t

val add_ub : t -> int -> int -> t  (** [add_ub t v c]: [x_v <= c] *)

val add_lb : t -> int -> int -> t  (** [add_lb t v c]: [x_v >= c] *)

(** {2 Assignments} *)

(** [forget t v] drops every constraint mentioning [v]. *)
val forget : t -> int -> t

(** [assign_var_plus t ~dst ~src c] is [x_dst := x_src + c] ([dst = src]
    allowed: an exact shift). The caller guarantees no wraparound. *)
val assign_var_plus : t -> dst:int -> src:int -> int -> t

(** [assign_const_minus t ~dst ~src c] is [x_dst := c - x_src]. *)
val assign_const_minus : t -> dst:int -> src:int -> int -> t

(** [assign_interval t v (lo, hi)] is [x_v := \[lo, hi\]] (forget + unary
    bounds). *)
val assign_interval : t -> int -> int * int -> t

(** {2 Queries} *)

(** [var_bounds t v] is [(lo, hi)] with [None] = unconstrained on that
    side; on bottom, the empty pair [(Some 0, Some (-1))]. *)
val var_bounds : t -> int -> int option * int option

(** [diff_bounds t ~u ~v] bounds [x_u - x_v] the same way. *)
val diff_bounds : t -> u:int -> v:int -> int option * int option

(** {2 Lattice} *)

val leq : t -> t -> bool
val equal : t -> t -> bool

(** Cell-wise max; on strongly closed arguments this is the best octagon
    abstraction of the union, and the result is again strongly closed. *)
val join : t -> t -> t

val meet : t -> t -> t

(** Threshold widening: a growing cell jumps to the smallest threshold
    covering it, else to infinity; stable cells keep their old bound. The
    result is deliberately not re-closed (termination). *)
val widen : t -> t -> t

(** Full strong closure (Floyd–Warshall + integer strengthening). Exposed
    for the idempotence property tests; normal operation relies on the
    incremental closure inside the constraint operations. *)
val close : t -> t

val pp : Format.formatter -> t -> unit
