module Corpus = Wcet_corpus.Corpus
module Compile = Minic.Compile
module Sim = Pred32_sim.Simulator
module Analyzer = Wcet_core.Analyzer
module Attribution = Wcet_core.Attribution
module Annot = Wcet_annot.Annot
module Diag = Wcet_diag.Diag
module Ledger = Wcet_obs.Ledger
module Pcg = Wcet_util.Pcg

type stats = {
  scenarios : int;
  complete : int;
  partial : int;
  failed : int;
  simulations : int;
  attributed : int;
  portfolio_wins : int;
  violations : Diag.t list;
  diagnostics : Diag.t list;
}

(* Random input sets that respect the scenario's contracts: cells covered
   by an [assume] range (word 0 of the symbol) are sampled inside it;
   every other poked cell is recombined from the values the declared input
   sets actually use. Cells never poked stay at their linked initial
   values. *)
let random_input_sets rng ~count (annot : Annot.t) inputs =
  let pool : ((string * int), int list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (List.iter (fun (sym, idx, v) ->
         match Hashtbl.find_opt pool (sym, idx) with
         | Some cell -> if not (List.mem v !cell) then cell := v :: !cell
         | None -> Hashtbl.add pool (sym, idx) (ref [ v ])))
    inputs;
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) pool [] |> List.sort compare in
  if keys = [] then []
  else
    List.init count (fun _ ->
        List.map
          (fun (sym, idx) ->
            let v =
              match
                List.find_opt (fun (s, _, _) -> s = sym && idx = 0) annot.Annot.assumes
              with
              | Some (_, lo, hi) -> lo + Pcg.next_int rng (hi - lo + 1)
              | None ->
                let vs = !(Hashtbl.find pool (sym, idx)) in
                List.nth vs (Pcg.next_int rng (List.length vs))
            in
            (sym, idx, v))
          keys)

let sim_fuel = 2_000_000

(* One ledger snapshot per analyzed scenario; [observed] is the worst
   halting cycle count seen across this run's input sets (None when nothing
   halted). The digest covers the scenario source text, so drift between
   tool versions is attributed to the tool, not the program. *)
let ledger_entry ~id ~variant (s : Corpus.scenario) ~verdict ~bound ~observed =
  {
    Ledger.program = id ^ "/" ^ variant;
    digest = Digest.to_hex (Digest.string s.Corpus.source);
    commit = Ledger.git_commit ();
    date = Ledger.iso_date ();
    verdict;
    bound;
    observed;
    metrics = [];
  }

(* The exact-sum acceptance property, re-asserted on every complete
   scenario: [Attribution.of_report] internally verifies that the
   per-source decomposition sums to bound − observed and fails with E0804
   otherwise; non-halting or partial cases (E0805) prove nothing and are
   skipped. *)
let check_attribution ~id ~variant (s : Corpus.scenario) report acc =
  let pokes = match s.Corpus.inputs with [] -> [] | p :: _ -> p in
  match Attribution.of_report ~pokes ~fuel:sim_fuel report with
  | Ok a ->
    ignore (a : Attribution.t);
    { acc with attributed = acc.attributed + 1 }
  | Error d when d.Diag.code = "E0804" ->
    let v =
      Diag.make Diag.Error Diag.Check ~code:"E0804"
        (Printf.sprintf "%s/%s: %s" id variant d.Diag.message)
    in
    { acc with violations = v :: acc.violations }
  | Error _ -> acc

(* Per-backend bounds for the ledger, so bound drift is attributable to a
   specific path backend across tool versions. *)
let backend_metrics (report : Analyzer.report) =
  List.filter_map
    (fun (b : Analyzer.backend_run) ->
      Option.map (fun bound -> ("path_bound_" ^ b.Analyzer.br_name, bound)) b.Analyzer.br_bound)
    report.Analyzer.backend_runs

(* The standing portfolio acceptance property: the portfolio includes IPET,
   so its tightest-of-backends bound can never exceed the IPET-only bound.
   A violation is the E0303 soundness bug surfaced as a check violation. *)
let check_portfolio ~domain ~id ~variant (s : Corpus.scenario) ~annot program
    (report : Analyzer.report) acc =
  match
    Analyzer.analyze ~hw:s.Corpus.hw ~annot ~domain ~path_backend:Wcet_path.Path_analysis.Ipet
      program
  with
  | exception Analyzer.Analysis_failed _ -> acc
  | ipet_only ->
    if ipet_only.Analyzer.verdict = Analyzer.Complete then
      if report.Analyzer.wcet > ipet_only.Analyzer.wcet then
        let d =
          Diag.make Diag.Error Diag.Check ~code:"E0303"
            (Printf.sprintf
               "%s/%s: portfolio bound %d exceeds the IPET-only bound %d — the tightest-bound \
                selection is broken"
               id variant report.Analyzer.wcet ipet_only.Analyzer.wcet)
        in
        { acc with violations = d :: acc.violations }
      else if report.Analyzer.wcet < ipet_only.Analyzer.wcet then
        { acc with portfolio_wins = acc.portfolio_wins + 1 }
      else acc
    else acc

let check_scenario rng ~domain ~path_portfolio ~random_per_scenario ~record ~id ~variant
    (s : Corpus.scenario) acc =
  let program = Compile.compile ~options:s.Corpus.options s.Corpus.source in
  let annot = s.Corpus.annotations program in
  match Analyzer.analyze ~hw:s.Corpus.hw ~annot ~domain program with
  | exception Analyzer.Analysis_failed ds ->
    let d =
      Diag.make Diag.Error Diag.Check ~code:"E0701"
        (Printf.sprintf "%s/%s: analysis failed during check (%s)" id variant
           (match ds with d :: _ -> d.Diag.code | [] -> "?"))
    in
    record (ledger_entry ~id ~variant s ~verdict:"failed" ~bound:None ~observed:None);
    { acc with scenarios = acc.scenarios + 1; failed = acc.failed + 1;
      diagnostics = d :: acc.diagnostics }
  | report -> (
    let precision = Attribution.precision_counts report in
    match report.Analyzer.verdict with
    | Analyzer.Partial ->
      record
        { (ledger_entry ~id ~variant s ~verdict:"partial"
             ~bound:(Some report.Analyzer.wcet) ~observed:None)
          with Ledger.metrics = precision };
      { acc with scenarios = acc.scenarios + 1; partial = acc.partial + 1 }
    | Analyzer.Complete ->
      let bound = report.Analyzer.wcet in
      let worst_observed = ref None in
      let input_sets =
        s.Corpus.inputs
        @ random_input_sets rng ~count:random_per_scenario annot s.Corpus.inputs
      in
      let acc = ref { acc with scenarios = acc.scenarios + 1; complete = acc.complete + 1 } in
      List.iter
        (fun pokes ->
          let sim = Sim.create s.Corpus.hw program in
          List.iter (fun (sym, idx, v) -> Sim.poke_symbol sim sym idx v) pokes;
          match Sim.run ~fuel:sim_fuel sim with
          | Sim.Halted { cycles; _ } ->
            acc := { !acc with simulations = !acc.simulations + 1 };
            (match !worst_observed with
            | Some c when c >= cycles -> ()
            | Some _ | None -> worst_observed := Some cycles);
            if cycles > bound then begin
              let d =
                Diag.make Diag.Error Diag.Check ~code:"E0601"
                  ~hint:
                    (String.concat "; "
                       (List.map (fun (s, i, v) -> Printf.sprintf "%s[%d]=%d" s i v) pokes))
                  (Printf.sprintf
                     "%s/%s: simulated run took %d cycles, exceeding the complete bound %d — \
                      analyzer soundness bug"
                     id variant cycles bound)
              in
              acc := { !acc with violations = d :: !acc.violations }
            end
          | Sim.Faulted { fault; _ } ->
            let d =
              Diag.make Diag.Warning Diag.Check ~code:"W0602"
                (Format.asprintf "%s/%s: simulation faulted (%a) — comparison inconclusive" id
                   variant
                   (fun ppf -> function
                     | Sim.Illegal_instruction pc ->
                       Format.fprintf ppf "illegal instruction at 0x%x" pc
                     | Sim.Bus_error a -> Format.fprintf ppf "bus error at 0x%x" a
                     | Sim.Write_to_rom a -> Format.fprintf ppf "write to ROM at 0x%x" a)
                   fault)
            in
            acc := { !acc with diagnostics = d :: !acc.diagnostics }
          | Sim.Out_of_fuel _ ->
            let d =
              Diag.make Diag.Warning Diag.Check ~code:"W0602"
                (Printf.sprintf "%s/%s: simulation exhausted %d-instruction fuel — comparison \
                                 inconclusive"
                   id variant sim_fuel)
            in
            acc := { !acc with diagnostics = d :: !acc.diagnostics })
        input_sets;
      record
        { (ledger_entry ~id ~variant s ~verdict:"complete" ~bound:(Some bound)
             ~observed:!worst_observed)
          with
          Ledger.metrics =
            (precision @ if path_portfolio then backend_metrics report else [])
        };
      let acc = check_attribution ~id ~variant s report !acc in
      if path_portfolio then check_portfolio ~domain ~id ~variant s ~annot program report acc
      else acc)

let run ?(seed = 20110318L) ?(domain = Wcet_value.Analysis.Interval) ?(path_portfolio = false)
    ?(random_per_scenario = 8) ?ledger () =
  let rng = Pcg.create ~seed () in
  let entries = ref [] in
  let record e = if ledger <> None then entries := e :: !entries in
  let empty =
    {
      scenarios = 0;
      complete = 0;
      partial = 0;
      failed = 0;
      simulations = 0;
      attributed = 0;
      portfolio_wins = 0;
      violations = [];
      diagnostics = [];
    }
  in
  let stats =
    List.fold_left
      (fun acc (e : Corpus.entry) ->
        let acc =
          check_scenario rng ~domain ~path_portfolio ~random_per_scenario ~record
            ~id:e.Corpus.id ~variant:"conforming" e.Corpus.conforming acc
        in
        check_scenario rng ~domain ~path_portfolio ~random_per_scenario ~record ~id:e.Corpus.id
          ~variant:"violating" e.Corpus.violating acc)
      empty Corpus.all
  in
  let stats =
    match ledger with
    | None -> stats
    | Some path -> (
      match Ledger.append ~path (List.rev !entries) with
      | Ok () -> stats
      | Error msg ->
        let d =
          Diag.makef Diag.Warning Diag.Obs ~code:"W0802" "bound ledger %s not written: %s"
            path msg
        in
        { stats with diagnostics = d :: stats.diagnostics })
  in
  {
    stats with
    violations = List.rev stats.violations;
    diagnostics = List.rev stats.diagnostics;
  }

let ok s = s.violations = [] && s.failed = 0

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>soundness check: %d scenarios (%d complete, %d partial, %d failed), %d simulated \
     runs, %d attributed, %d violation(s)@,"
    s.scenarios s.complete s.partial s.failed s.simulations s.attributed
    (List.length s.violations);
  if s.portfolio_wins > 0 then
    Format.fprintf ppf "portfolio strictly tighter than IPET on %d scenario(s)@,"
      s.portfolio_wins;
  if s.violations <> [] then Format.fprintf ppf "%a@," Diag.pp_list s.violations;
  if s.diagnostics <> [] then Format.fprintf ppf "%a@," Diag.pp_list s.diagnostics;
  Format.fprintf ppf "verdict: %s@]" (if ok s then "OK" else "FAILED")

let to_json s =
  let open Wcet_diag.Json in
  Obj
    [
      ("scenarios", Int s.scenarios);
      ("complete", Int s.complete);
      ("partial", Int s.partial);
      ("failed", Int s.failed);
      ("simulations", Int s.simulations);
      ("attributed", Int s.attributed);
      ("portfolio_wins", Int s.portfolio_wins);
      ("violations", List (List.map Diag.to_json s.violations));
      ("diagnostics", List (List.map Diag.to_json s.diagnostics));
      ("ok", Bool (ok s));
    ]
