(* Textual assembler tests: parse, link, run; error reporting. *)

module Asm_parser = Pred32_asm.Asm_parser
module Assembler = Pred32_asm.Assembler
module Sim = Pred32_sim.Simulator
module Hw = Pred32_hw.Hw_config

let run_rv text =
  let unit_ = Asm_parser.parse text in
  let program = Assembler.link unit_ in
  match Sim.run (Sim.create Hw.default program) with
  | Sim.Halted { return_value; _ } -> Pred32_isa.Word.to_signed return_value
  | o -> Alcotest.failf "did not halt: %a" Sim.pp_outcome o

let test_minimal () =
  Alcotest.(check int) "li+mul" 42
    (run_rv {|
.func main
  li r2, 21          ; load immediate
  muli r1, r2, 2     # both comment styles work
  ret
|})

let test_loop_and_labels () =
  Alcotest.(check int) "sum 1..10" 55
    (run_rv
       {|
.func main
  li r1, 0
  li r2, 0
  li r3, 10
loop:
  addi r2, r2, 1
  add r1, r1, r2
  blt r2, r3, loop
  ret
|})

let test_data_and_la () =
  Alcotest.(check int) "load global" 7
    (run_rv {|
.func main
  la r2, value
  lw r1, 0(r2)
  ret
.data value ram
  .word 7
|})

let test_fptr_table () =
  Alcotest.(check int) "call through table" 5
    (run_rv
       {|
.func five
  li r1, 5
  ret
.func main
  la r2, table
  lw r2, 0(r2)
  addi sp, sp, -4
  sw lr, 0(sp)
  callr r2
  lw lr, 0(sp)
  addi sp, sp, 4
  ret
.data table rom
  .addr five
|})

let test_scratch_placement () =
  Alcotest.(check int) "scratch data" 9
    (run_rv {|
.func main
  la r2, fast
  lw r1, 0(r2)
  ret
.data fast scratch
  .word 9
|})

let test_errors () =
  let expect_error text =
    match Asm_parser.parse text with
    | exception Asm_parser.Error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" text
  in
  expect_error ".func main\n  frobnicate r1\n";
  expect_error ".func main\n  li r99, 1\n";
  expect_error ".func main\n  lw r1, nonsense\n";
  expect_error "  li r1, 1\n";
  (* code before .func *)
  expect_error ".data d\n  .word x\n"

let test_analyzable () =
  (* hand-written assembly goes through the same analyzer *)
  let unit_ =
    Asm_parser.parse
      {|
.func main
  li r1, 0
  li r2, 0
  li r3, 25
head:
  bge r2, r3, done
  add r1, r1, r2
  addi r2, r2, 1
  j head
done:
  ret
|}
  in
  let program = Assembler.link unit_ in
  let report = Wcet_core.Analyzer.analyze program in
  let observed = Sim.halted_cycles (Sim.run (Sim.create Hw.default program)) in
  Alcotest.(check bool) "sound" true (observed <= report.Wcet_core.Analyzer.wcet)

let () =
  Alcotest.run "asm_parser"
    [
      ( "parse+run",
        [
          Alcotest.test_case "minimal" `Quick test_minimal;
          Alcotest.test_case "loop and labels" `Quick test_loop_and_labels;
          Alcotest.test_case "data and la" `Quick test_data_and_la;
          Alcotest.test_case "function pointer table" `Quick test_fptr_table;
          Alcotest.test_case "scratch placement" `Quick test_scratch_placement;
        ] );
      ("errors", [ Alcotest.test_case "rejected inputs" `Quick test_errors ]);
      ("analysis", [ Alcotest.test_case "hand-written asm analyzes" `Quick test_analyzable ]);
    ]
