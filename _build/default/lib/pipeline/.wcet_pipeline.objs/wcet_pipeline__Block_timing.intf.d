lib/pipeline/block_timing.mli: Pred32_hw Pred32_isa Pred32_memory Wcet_cache Wcet_value
