lib/softarith/ldivmod.mli:
