(** The MiniC runtime library: software arithmetic, written in MiniC itself
    and linked on demand.

    - Division cluster: [__udivmod32] is the lDivMod-style successive-
      approximation divider studied in Section 4.4 of the paper (estimate a
      partial quotient from the divisor's top 16 bits via the fixed-latency
      EDIV primitive emulation, then correct; iteration count is
      data-dependent, almost always 1, with a rare long tail).
      [__udiv32_restoring] is the WCET-predictable baseline: a restoring
      divider with exactly 32 iterations for every input.
      [__ldivmod_iters] (global) exposes the iteration count of the last
      [__udivmod32] call for the Table 1 experiment.
    - Soft-float cluster: simplified binary32 with flush-to-zero and
      truncating rounding (no NaN/infinity arithmetic), as typical for
      size-optimized embedded arithmetic libraries. The normalization loops
      are data-dependent — which is precisely why rule 13.4 (no float loop
      conditions) matters for loop-bound analysis.

    [Softarith] in lib/softarith provides bit-exact OCaml references for
    all of these; property tests check the compiled MiniC against them. *)

(** MiniC source of the division cluster ([__ediv], [__udivmod32],
    [__udiv32], [__urem32], [__udiv32_restoring] and their result
    globals). *)
val div_source : string

(** MiniC source of the soft-float cluster ([__f_add], [__f_sub], [__f_mul],
    [__f_div], [__f_lt], [__f_le], [__f_eq], [__f_from_int],
    [__f_to_int]). *)
val float_source : string

(** Function names defined by each cluster. *)
val div_functions : string list

val float_functions : string list
