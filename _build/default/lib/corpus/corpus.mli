(** The guideline-study workload corpus.

    For every MISRA-C rule the paper analyzes (Section 4.2), one
    {e conforming} and one {e violating} MiniC program computing comparable
    work, plus the tier-two scenario programs of Section 4.3. Each scenario
    carries the hardware profile and compiler options it needs, the
    annotations that make it analyzable (when automatic analysis is
    expected to fail — that failure being the measured phenomenon), and
    input sets for measuring observed execution times. *)

type scenario = {
  source : string;
  options : Minic.Codegen.options;
  hw : Pred32_hw.Hw_config.t;
  annotations : Pred32_asm.Program.t -> Wcet_annot.Annot.t;
      (** annotations for the assisted analysis run (the automatic run
          always uses the empty set) *)
  inputs : (string * int * int) list list;
      (** poke sets (symbol, word index, value) for observed-time runs *)
}

type entry = {
  id : string;  (** e.g. "13.4" or "modes" *)
  title : string;
  expectation : string;  (** the paper's qualitative claim being tested *)
  conforming : scenario;
  violating : scenario;
}

(** The nine MISRA-rule pairs of Section 4.2 (E1 experiments). *)
val rule_entries : entry list

(** The tier-two scenarios of Section 4.3 (E2 experiments): operating
    modes, message buffer, memory regions, error handling, software
    arithmetic. In these, "conforming" is the annotated/documented system
    and "violating" the undocumented one. *)
val tier_two_entries : entry list

val find : string -> entry option
val all : entry list
