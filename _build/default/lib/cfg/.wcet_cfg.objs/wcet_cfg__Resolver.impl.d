lib/cfg/resolver.ml: Array Func_cfg List Pred32_asm Pred32_isa Pred32_memory
