(** Generic worklist fixpoint solver for forward data-flow problems on an
    explicit directed graph of integer-indexed nodes.

    All abstract-interpretation passes (value analysis, cache analysis) are
    instances of this solver. The default worklist is a binary heap keyed by
    the reverse-postorder index of each node (computed once from the
    problem's entries and successor function), so a node is re-transferred
    only after its forward-graph predecessors have settled in the current
    sweep — far fewer transfers than chaotic FIFO iteration on loop nests. *)

(** [Fifo] preserves the historical chaotic-iteration order and exists for
    transfer-count comparisons; [Rpo] is the default. *)
type strategy = Fifo | Rpo

val strategy_name : strategy -> string

(** [rpo_index ~num_nodes ~entries ~succs] is the reverse-postorder index of
    every node reachable from [entries]; unreachable nodes get [max_int].
    Exposed for tests and for consumers that want the traversal order. *)
val rpo_index : num_nodes:int -> entries:int list -> succs:(int -> int list) -> int array

(** Raised out of {!Make.solve} / {!Make.solve_plan} when their [cancel]
    callback returns [true]. Cooperative: the token is polled once per
    transfer, so a solve stops within one transfer of the token tripping.
    The daemon uses this for per-request deadlines; partial solver state is
    discarded by the caller. *)
exception Cancelled

(** Schedule for {!Make.solve_plan}: the node graph condensed into strongly
    connected components (built by [Wcet_cfg.Callgraph.condense], which lives
    above this module in the dependency order). Components are numbered
    topologically — every cross-component edge goes from a smaller to a
    larger id — and grouped into dependency levels with no edges inside a
    level. [plan_priority] is the global {!rpo_index} of the underlying
    problem, kept so per-component solves pop nodes in the whole-program
    order. *)
type plan = {
  plan_comp_of : int array;  (** node -> component id (topological) *)
  plan_comps : int array array;  (** component id -> members, by priority *)
  plan_levels : int array array;  (** level -> component ids, ascending *)
  plan_priority : int array;  (** global RPO index of every node *)
}

module type Domain = sig
  type t

  (** Partial-order test: [leq a b] iff [a] is at most [b]. *)
  val leq : t -> t -> bool

  (** Least upper bound. *)
  val join : t -> t -> t

  (** Widening, applied at designated widening points after
      [widening_delay] visits. Implementations without infinite ascending
      chains may return [join]. *)
  val widen : t -> t -> t
end

module Make (D : Domain) : sig
  type problem = {
    num_nodes : int;
    entries : (int * D.t) list;  (** entry nodes with their initial states *)
    succs : int -> int list;
    transfer : int -> D.t -> D.t;  (** out-state of a node from its in-state *)
    widening_points : int -> bool;  (** typically loop headers *)
    widening_delay : int;
  }

  type result = {
    in_state : int -> D.t option;  (** [None] for unreachable nodes *)
    out_state : int -> D.t option;
    transfers : int;  (** total transfer applications, for diagnostics *)
    widenings : int;  (** merges that used [widen] rather than [join] *)
    joins : int;  (** merges that used [join] *)
    max_pending : int;  (** peak worklist occupancy *)
  }

  (** [solve ?strategy ?propagate ?force_widen_after ?budget problem] runs
      the worklist algorithm to a post-fixpoint.

      [propagate node out_state] lists the per-edge contributions
      [(target, state)] of a node's out-state; the default forwards
      [out_state] to every successor. Consumers use it for branch
      refinement, where an edge can narrow the state or drop it entirely
      (infeasible edge). The targets it returns must be a subset of
      [succs node] — the priority order is computed from [succs].

      [seeds node] supplies an [(in_state, out_state)] pair recorded from a
      previous solve of a compatible problem (same transfer semantics for
      that node). Seeded nodes start settled at those states and re-enter
      the worklist only when a propagated contribution is not already below
      the seeded in-state; each seeded out-state is propagated once at
      start-up so unseeded successors still receive the cached dataflow.
      Soundness: because the system is monotone and seeds are post-fixpoint
      components, the result is again a post-fixpoint; if the seeds came
      from the least fixpoint of the *same* problem the result is identical
      and no seeded node is re-transferred.

      [force_widen_after] widens at any node visited more than that many
      times regardless of [widening_points], as a convergence backstop.
      [budget] caps the transfer count; exceeding it raises [Failure].
      [cancel] is polled before every transfer; when it returns [true] the
      solve raises {!Cancelled}. *)
  val solve :
    ?strategy:strategy ->
    ?propagate:(int -> D.t -> (int * D.t) list) ->
    ?seeds:(int -> (D.t * D.t) option) ->
    ?force_widen_after:int ->
    ?budget:int ->
    ?cancel:(unit -> bool) ->
    problem ->
    result

  (** Per-component outcome of {!solve_plan}. *)
  type plan_info = {
    applied : bool array;
        (** component was installed from summary rows, not solved *)
    per_comp_transfers : int array;
    ext_input : D.t option array;
        (** per node: the joined cross-component ("inbox") contribution the
            node received, [None] when it only saw intra-component dataflow *)
  }

  (** [solve_plan ~plan problem] solves the problem one strongly connected
      component at a time, bottom-up over the condensation: levels run in
      order, the components of a level are independent and fan out across
      the {!Parallel} domain pool, and results are merged in component
      order so the outcome is deterministic for any domain count.

      Because every cross-component edge goes forward in both the
      condensation and the RPO priority, the whole-program {!solve} also
      finishes a component's predecessors before first visiting the
      component; solving each component against its accumulated external
      inputs with the global RPO priority therefore reproduces the
      whole-program fixpoint (and transfer count) component by component.

      [summary ~comp ~input] may short-circuit a component by returning
      recorded [(in, out)] rows for its members; they are installed without
      transferring and their out-states propagated downstream. The callback
      must only do so when [input] — the delivered inbox, per member —
      semantically equals the inputs the rows were recorded under, and the
      rows cover every member (unreached members may map to [None]).
      It runs on a worker domain and must not mutate shared state except at
      member indices. [on_comp_start cid] runs on the worker domain before
      the component is examined (summary check included); [on_level_done
      comps] runs on the calling domain after a level is merged.

      [strategy] is not a parameter: scheduled solving is inherently
      priority-driven ([Rpo]). [seeds] are not supported — summaries
      subsume them. [cancel] is polled on the worker domains before every
      transfer; a tripped token raises {!Cancelled} on the calling domain
      (the token must therefore be safe to call from any domain). *)
  val solve_plan :
    ?propagate:(int -> D.t -> (int * D.t) list) ->
    ?summary:(comp:int -> input:(int -> D.t option) -> (int -> (D.t * D.t) option) option) ->
    ?on_comp_start:(int -> unit) ->
    ?on_level_done:(int array -> unit) ->
    ?force_widen_after:int ->
    ?budget:int ->
    ?cancel:(unit -> bool) ->
    ?domains:int ->
    plan:plan ->
    problem ->
    result * plan_info
end
