(** The loop/value analysis of Figure 1: a context-sensitive interval
    analysis over the supergraph with branch refinement.

    Produces per-node abstract states, per-instruction data-access address
    intervals (consumed by the cache analysis), and reachability (unreached
    nodes are the over-approximated dead code of MISRA rule 14.1's
    discussion). *)

type access = {
  insn_index : int;
  insn_addr : int;
  is_store : bool;
  addr : Aval.t;  (** address interval of the access *)
}

type result = {
  graph : Wcet_cfg.Supergraph.t;
  node_in : State.t option array;  (** [None] = unreachable *)
  node_out : State.t option array;
  accesses : access list array;  (** per node, in instruction order *)
  transfers : int;  (** fixpoint transfer count (worklist efficiency metric) *)
}

(** [run ?strategy ?assumes graph loops] — [assumes] are trusted initial
    memory facts (address, interval) from annotations (the paper's
    design-level information). [strategy] selects the worklist order of the
    shared fixpoint engine (default reverse-postorder priority; [Fifo] only
    for transfer-count comparisons — the fixpoint itself is identical).
    [seeds] supplies cached per-node (in, out) states from a previous run
    (see {!Wcet_util.Fixpoint.Make.solve}); nodes of unchanged functions
    then settle without re-transferring (incremental re-analysis).
    [cancel] is the cooperative cancellation token of the underlying
    solver: when it trips, {!Wcet_util.Fixpoint.Cancelled} escapes. *)
val run :
  ?strategy:Wcet_util.Fixpoint.strategy ->
  ?assumes:(int * Aval.t) list ->
  ?seeds:(int -> (State.t * State.t) option) ->
  ?cancel:(unit -> bool) ->
  ?publish:bool ->
  Wcet_cfg.Supergraph.t ->
  Wcet_cfg.Loops.info ->
  result

(** [run_scheduled ?assumes ?slice graph loops] solves the same problem one
    strongly connected component at a time, bottom-up over the call-graph
    condensation ({!Wcet_cfg.Callgraph.condense} +
    {!Wcet_util.Fixpoint.Make.solve_plan}): independent components run
    concurrently on the domain pool with a deterministic merge, and a
    component whose members are covered by [slice] rows recorded under
    semantically equal external inputs is applied without transferring a
    single node — a one-function edit re-solves only that function's
    components and the components whose inputs actually changed.

    Returns the {!result} plus the {!Summary.info} needed to persist fresh
    rows (external inputs, linkage registrations) and the
    computed/applied component counts. *)
val run_scheduled :
  ?assumes:(int * Aval.t) list ->
  ?slice:Summary.slice ->
  ?cancel:(unit -> bool) ->
  ?domains:int ->
  ?publish:bool ->
  Wcet_cfg.Supergraph.t ->
  Wcet_cfg.Loops.info ->
  result * Summary.info

(** When a run may later be escalated, pass [~publish:false] above and
    publish the [value_accesses] precision counters once, from whichever
    result ends up final. *)
val publish_access_metrics : access list array -> unit

(** {2 Octagon escalation} *)

(** Which abstract domain the value analysis may use: [Interval] is the
    always-on baseline; [Octagon] forces a relational re-solve of every
    function; [Auto] escalates only functions whose interval results left
    imprecise accesses or input-dependent/aliased loop-bound causes. *)
type domain = Interval | Octagon | Auto

val domain_name : domain -> string
val domain_of_string : string -> domain option

type escalation = {
  esc_funcs : string list;  (** functions that triggered the escalation *)
  esc_transfers : int;  (** product-domain transfer count *)
  esc_slots : int list;  (** tracked stack/global word addresses *)
  esc_result : result;
      (** the interval result refined under the octagon re-solve; leq the
          base result by construction (a per-node meet) *)
  esc_rel : int -> counter:Pred32_isa.Reg.t -> other:Pred32_isa.Reg.t -> int option * int option;
      (** [esc_rel node ~counter ~other] bounds [other - counter] at the
          node's branch point (out-state) — the relational loop-bound hook
          consumed by {!Loop_bounds.analyze} *)
}

(** [escalate ~funcs base loops] re-solves the supergraph under the
    interval x octagon reduced product (relational constraints over the 16
    registers plus the singleton access targets of [funcs]) and folds the
    result back under [base]. The product's interval component repeats the
    base transfer, so the refinement can only tighten; the octagon side
    obeys the wraparound contract of {!Octagon}. *)
val escalate :
  ?assumes:(int * Aval.t) list ->
  ?cancel:(unit -> bool) ->
  funcs:string list ->
  result ->
  Wcet_cfg.Loops.info ->
  escalation

(** [reachable result node] is false for nodes the analysis proved
    unreachable (infeasible paths, excluded modes). *)
val reachable : result -> int -> bool

(** [feasible_successors result node] is the node's successor list with
    refinement-infeasible branch edges removed. *)
val feasible_successors :
  result -> int -> (Wcet_cfg.Supergraph.edge_kind * int) list

(** [reg_at_exit result node reg] is the register's interval in the node's
    out-state ([Bot] if unreachable). *)
val reg_at_exit : result -> int -> Pred32_isa.Reg.t -> Aval.t

(** [mem_at_entry result node addr] is the tracked interval of a memory word
    in the node's in-state. *)
val mem_at_entry : result -> int -> int -> Aval.t

(** {2 Path-exploration hooks}

    The model-checking path backend walks individual supergraph paths
    carrying a {!State.t}, using the same transfer and branch-refinement
    functions the fixpoint runs — a pruned edge is pruned by exactly the
    machinery whose invariants the rest of the tool already trusts. *)

type path_ctx

val path_ctx : result -> path_ctx

(** Transfer a node's whole block. *)
val path_step : path_ctx -> State.t -> Wcet_cfg.Supergraph.node -> State.t

(** Apply branch refinement on an outgoing edge; [None] = infeasible. *)
val path_follow :
  path_ctx ->
  Wcet_cfg.Supergraph.node ->
  Wcet_cfg.Supergraph.edge_kind ->
  State.t ->
  State.t option
