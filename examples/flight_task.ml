(* The paper's motivating system in one example: a flight-control task with
   operating modes (ground/air), a cyclic message handler with exclusive
   read/write phases, a bounded error-recovery path, and device polling
   through an undocumented pointer. Analyzed four ways:

     1. no annotations at all            -> fails (unbounded loops)
     2. just enough to get a bound       -> very pessimistic
     3. + full design-level documentation -> tight
     4. per operating mode                -> tight and mode-specific

     dune exec examples/flight_task.exe *)

let source =
  {|
int mode;              /* 0 = ground, 1 = air */
int cycle;
int msg_len;           /* design spec: at most 12 words */
int errs;
int dev_base;          /* device register block, passed in at boot */
scratch int dev[16];
int rx[12];
int tx[12];
int out;

int poll_device(int *base) {
  int i;
  int s;
  s = 0;
  for (i = 0; i < 8; i = i + 1) { s = s + base[i]; }
  return s;
}

int read_msg() {
  int i;
  int s;
  s = 0;
  for (i = 0; i < msg_len; i = i + 1) { s = s + rx[i]; }
  return s;
}

int write_msg(int seed) {
  int i;
  for (i = 0; i < msg_len; i = i + 1) { tx[i] = seed + i; }
  return msg_len;
}

void recover(int code) {
  int i;
  for (i = 0; i < 90; i = i + 1) { out = out + code + i; }
}

int air_control() {
  int i;
  int s;
  s = poll_device((int*)dev_base);
  for (i = 0; i < 120; i = i + 1) { s = s + i * 2; }
  return s;
}

int ground_control() {
  return poll_device((int*)dev_base) >> 2;
}

int main() {
  int r;
  int i;
  r = 0;
  if ((cycle & 1) == 0) { r = r + read_msg(); }
  if ((cycle & 1) == 1) { r = r + write_msg(cycle); }
  for (i = 0; i < 4; i = i + 1) {
    if ((errs >> i) & 1) { recover(i); }
  }
  if (mode == 1) { out = air_control(); } else { out = ground_control(); }
  return r + out;
}
|}

let annot text =
  match Wcet_annot.Annot.parse text with
  | Ok a -> a
  | Error msg -> failwith msg

let minimal = annot "assume msg_len in [ 0 12 ]"

let documented =
  annot
    "assume msg_len in [ 0 12 ]\n\
     exclusive read_msg, write_msg\n\
     maxcount recover <= 1\n\
     memory poll_device = scratch"

let () =
  let program = Minic.Compile.compile source in
  let try_analysis label a =
    match Wcet_core.Analyzer.analyze ~annot:a program with
    | report -> (
      match report.Wcet_core.Analyzer.verdict with
      | Wcet_core.Analyzer.Complete ->
        Format.printf "  %-42s %7d cycles (best case >= %d)@." label
          report.Wcet_core.Analyzer.wcet report.Wcet_core.Analyzer.bcet
      | Wcet_core.Analyzer.Partial ->
        Format.printf "  %-42s %7d cycles — PARTIAL, %d hole(s)@." label
          report.Wcet_core.Analyzer.wcet
          (List.length report.Wcet_core.Analyzer.holes))
    | exception Wcet_core.Analyzer.Analysis_failed ds ->
      let first =
        match ds with
        | d :: _ -> Printf.sprintf "[%s] %s" d.Wcet_diag.Diag.code d.Wcet_diag.Diag.message
        | [] -> "?"
      in
      Format.printf "  %-42s FAILS: %s@." label
        (String.map (fun c -> if c = '\n' then ' ' else c) first)
  in
  Format.printf "flight-control task, one WCET analysis per documentation level:@.";
  try_analysis "1. no annotations:" Wcet_annot.Annot.empty;
  try_analysis "2. buffer-size assume only:" minimal;
  try_analysis "3. + exclusivity, error, region facts:" documented;
  List.iter
    (fun (name, extra) ->
      try_analysis
        (Printf.sprintf "4. documented, %s mode:" name)
        (Wcet_annot.Annot.merge documented (annot extra)))
    [ ("ground", "assume mode = 0"); ("air", "assume mode = 1") ];
  (* cross-check against simulation in the documented scenario *)
  let observe ~mode ~cycle ~errs =
    let sim = Pred32_sim.Simulator.create Pred32_hw.Hw_config.default program in
    Pred32_sim.Simulator.poke_symbol sim "mode" 0 mode;
    Pred32_sim.Simulator.poke_symbol sim "cycle" 0 cycle;
    Pred32_sim.Simulator.poke_symbol sim "errs" 0 errs;
    Pred32_sim.Simulator.poke_symbol sim "msg_len" 0 12;
    Pred32_sim.Simulator.poke_symbol sim "dev_base" 0 0x20000000;
    Pred32_sim.Simulator.halted_cycles (Pred32_sim.Simulator.run sim)
  in
  Format.printf "@.observed: ground/read %d, ground/write+err %d, air/read %d cycles@."
    (observe ~mode:0 ~cycle:0 ~errs:0)
    (observe ~mode:0 ~cycle:1 ~errs:4)
    (observe ~mode:1 ~cycle:0 ~errs:0);
  Format.printf
    "@.Each layer of design-level documentation (Section 4.3 of the paper) buys a tighter \
     bound; the mode split finishes the job.@."
