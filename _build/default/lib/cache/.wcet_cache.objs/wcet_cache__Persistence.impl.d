lib/cache/persistence.ml: Array Cache_analysis Fun Hashtbl List Option Pred32_hw Pred32_isa Pred32_memory Wcet_cfg Wcet_value
