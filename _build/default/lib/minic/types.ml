type t =
  | Tint
  | Tunsigned
  | Tfloat
  | Tvoid
  | Tptr of t
  | Tarray of t * int
  | Tfun of signature

and signature = { params : t list; varargs : bool; ret : t }

let rec size_words = function
  | Tint | Tunsigned | Tfloat | Tptr _ -> 1
  | Tarray (elt, n) -> n * size_words elt
  | Tvoid -> invalid_arg "Types.size_words: void"
  | Tfun _ -> invalid_arg "Types.size_words: function"

let decay = function
  | Tarray (elt, _) -> Tptr elt
  | (Tint | Tunsigned | Tfloat | Tvoid | Tptr _ | Tfun _) as ty -> ty

let is_arith = function
  | Tint | Tunsigned | Tfloat -> true
  | Tvoid | Tptr _ | Tarray _ | Tfun _ -> false

let rec equal a b =
  match (a, b) with
  | Tint, Tint | Tunsigned, Tunsigned | Tfloat, Tfloat | Tvoid, Tvoid -> true
  | Tptr a, Tptr b -> equal a b
  | Tarray (a, n), Tarray (b, m) -> n = m && equal a b
  | Tfun a, Tfun b ->
    a.varargs = b.varargs && equal a.ret b.ret
    && List.length a.params = List.length b.params
    && List.for_all2 equal a.params b.params
  | (Tint | Tunsigned | Tfloat | Tvoid | Tptr _ | Tarray _ | Tfun _), _ -> false

let compatible a b =
  match (decay a, decay b) with
  | (Tint | Tunsigned), (Tint | Tunsigned) -> true
  | Tfloat, Tfloat -> true
  | Tptr _, (Tptr _ | Tint | Tunsigned) -> true
  | (Tint | Tunsigned), Tptr _ -> true
  | a, b -> equal a b

let rec pp ppf = function
  | Tint -> Format.pp_print_string ppf "int"
  | Tunsigned -> Format.pp_print_string ppf "unsigned"
  | Tfloat -> Format.pp_print_string ppf "float"
  | Tvoid -> Format.pp_print_string ppf "void"
  | Tptr t -> Format.fprintf ppf "%a*" pp t
  | Tarray (t, n) -> Format.fprintf ppf "%a[%d]" pp t n
  | Tfun { params; varargs; ret } ->
    Format.fprintf ppf "%a(*)(%a%s)" pp ret
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp)
      params
      (if varargs then ", ..." else "")
