module Supergraph = Wcet_cfg.Supergraph
module Analysis = Wcet_value.Analysis
module Aval = Wcet_value.Aval
module State = Wcet_value.State

let name = "mc"
let path_sensitive = true
let fact_blind = true
let exact_witness = true

(* Suffix explorations before the backend declares itself intractable;
   memoization makes ordinary mode-structured programs cost O(nodes *
   distinct states). *)
let budget = 200_000

exception Intractable

let solve (spec : Path_analysis.spec) (loops : Wcet_cfg.Loops.info) =
  try
    let t = Forest.build spec loops in
    let value = spec.Path_analysis.value in
    let graph = value.Analysis.graph in
    let n = Array.length graph.Supergraph.nodes in
    let ctx = Analysis.path_ctx value in
    let visits = ref 0 in
    let memo : (int * string, (int * Forest.counts) option) Hashtbl.t = Hashtbl.create 256 in
    let skey (st : State.t) =
      Digest.string
        (Marshal.to_string
           (st.State.regs, State.Addr_map.bindings st.State.mem, st.State.origins)
           [])
    in
    (* Crossing a collapsed loop: land on the successor's invariant (the
       merge at the loop head), re-applying only the carried memory facts
       at words the body provably never stores to. A bottom meet means the
       invariant already contradicts a carried fact: the path cannot take
       this exit. *)
    let exit_state (st : State.t) (p : Forest.proxy) y =
      match value.Analysis.node_in.(y) with
      | None -> None
      | Some inv -> (
        match p.Forest.p_writes with
        | Forest.All -> Some inv
        | Forest.Ranges rs ->
          let clobbered a = List.exists (fun (lo, hi) -> a >= lo && a <= hi) rs in
          let exception Contradiction in
          (try
             let mem =
               State.Addr_map.fold
                 (fun a v acc ->
                   if clobbered a then acc
                   else begin
                     let cur =
                       match State.Addr_map.find_opt a acc with
                       | Some x -> x
                       | None -> Aval.top
                     in
                     let m = Aval.meet cur v in
                     if Aval.is_bot m then raise Contradiction
                     else State.Addr_map.add a m acc
                   end)
                 st.State.mem inv.State.mem
             in
             Some { inv with State.mem }
           with Contradiction -> None))
    in
    (* dfs v st = best suffix from v entered with state st, including v's
       own weight; None when the carried state proves every continuation
       infeasible (the prefix cannot actually reach v like this). *)
    let rec dfs v (st : State.t) : (int * Forest.counts) option =
      incr visits;
      if !visits > budget then raise Intractable;
      let key = (v, skey st) in
      match Hashtbl.find_opt memo key with
      | Some r -> r
      | None ->
        let self_counts =
          match t.Forest.proxy.(v) with
          | Some p -> (p.Forest.p_cycle, p.Forest.p_bound)
          | None -> ([ (v, 1) ], 1)
        in
        let best = ref None in
        let consider c mk =
          match !best with Some (c0, _) when c0 >= c -> () | _ -> best := Some (c, mk)
        in
        (match t.Forest.proxy.(v) with
        | Some p ->
          List.iter (fun (tc, tcs) -> consider tc (fun () -> tcs)) p.Forest.p_terminals;
          if t.Forest.out_edges.(v) = [] && p.Forest.p_terminals = [] then
            consider 0 (fun () -> []);
          List.iter
            (fun (e : Forest.edge) ->
              match exit_state st p e.Forest.e_dst with
              | None -> ()
              | Some st' -> (
                match dfs e.Forest.e_dst st' with
                | None -> ()
                | Some (c, cs) ->
                  consider (e.Forest.e_w + c) (fun () ->
                      Forest.merge_counts [ (e.Forest.e_tail, 1); (cs, 1) ])))
            t.Forest.out_edges.(v)
        | None ->
          if t.Forest.out_edges.(v) = [] then consider 0 (fun () -> [])
          else begin
            let node = graph.Supergraph.nodes.(v) in
            let st_out = Analysis.path_step ctx st node in
            List.iter
              (fun (e : Forest.edge) ->
                match Analysis.path_follow ctx node e.Forest.e_kind st_out with
                | None -> ()
                | Some st' -> (
                  match dfs e.Forest.e_dst st' with
                  | None -> ()
                  | Some (c, cs) -> consider (e.Forest.e_w + c) (fun () -> cs)))
              t.Forest.out_edges.(v)
          end);
        let r =
          match !best with
          | None -> None
          | Some (c, mk) ->
            Some
              ( t.Forest.weight.(v) + c,
                Forest.merge_counts [ (fst self_counts, snd self_counts); (mk (), 1) ] )
        in
        Hashtbl.replace memo key r;
        r
    in
    match value.Analysis.node_in.(t.Forest.entry) with
    | None -> Error (Path_analysis.internal "entry node unreachable")
    | Some st0 -> (
      match dfs t.Forest.entry st0 with
      | None ->
        Error (Path_analysis.internal "model checking pruned every path from the entry")
      | Some (wcet, counts) ->
        let sol = { Path_analysis.wcet; node_counts = Forest.counts_to_array ~n counts } in
        (match Path_analysis.check_identity sol spec.Path_analysis.times with
        | Ok () -> Ok sol
        | Error d ->
          Error
            (Path_analysis.internal
               (Printf.sprintf "mc count/time identity off by %d cycles" d))))
  with
  | Forest.Failed e -> Error e
  | Intractable ->
    Error
      (Path_analysis.intractable
         (Printf.sprintf "path exploration exceeded the %d-suffix budget" budget))
