lib/value/loop_bounds.ml: Analysis Array Aval Either Format List Option Pred32_isa State Wcet_cfg
