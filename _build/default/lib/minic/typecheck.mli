(** Name resolution, type checking and elaboration into {!Tast}.

    Builtins: malloc (byte count, returns a word pointer), __setjmp
    (jmp_buf pointer, returns int), __longjmp (jmp_buf pointer and value,
    returns nothing), __va_arg (index, returns the variadic argument).

    MiniC division and modulo have unsigned semantics (like the small-target
    C dialects the paper's software-arithmetic discussion concerns); signed
    programs in the corpus only divide non-negative values. *)

exception Error of string * Ast.loc

val check : Ast.program -> Tast.tprogram
