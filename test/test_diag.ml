(* Tests for the diagnostics subsystem (lib/diag) and the analyzer's
   graceful-degradation behaviour: local problems become analysis holes
   with structured diagnostics and a partial verdict instead of aborting
   the analysis. *)

module Json = Wcet_diag.Json
module Diag = Wcet_diag.Diag
module Analyzer = Wcet_core.Analyzer
module Compile = Minic.Compile
module Annot = Wcet_annot.Annot

(* --- JSON emitter --- *)

let test_json_scalars () =
  Alcotest.(check string) "null" "null" (Json.to_string Json.Null);
  Alcotest.(check string) "true" "true" (Json.to_string (Json.Bool true));
  Alcotest.(check string) "int" "-42" (Json.to_string (Json.Int (-42)));
  Alcotest.(check string) "string" "\"hi\"" (Json.to_string (Json.String "hi"))

let test_json_escaping () =
  Alcotest.(check string) "quotes and backslash" "\"a\\\"b\\\\c\""
    (Json.to_string (Json.String "a\"b\\c"));
  Alcotest.(check string) "newline tab" "\"x\\ny\\tz\""
    (Json.to_string (Json.String "x\ny\tz"));
  Alcotest.(check string) "control char" "\"\\u0001\""
    (Json.to_string (Json.String "\x01"))

let test_json_nested () =
  let v =
    Json.Obj
      [ ("xs", Json.List [ Json.Int 1; Json.Int 2 ]); ("o", Json.Obj [ ("k", Json.Null) ]) ]
  in
  Alcotest.(check string) "nested" "{\"xs\":[1,2],\"o\":{\"k\":null}}" (Json.to_string v)

let test_json_nonfinite_floats () =
  Alcotest.(check string) "nan is null" "null" (Json.to_string (Json.Float nan));
  Alcotest.(check string) "inf is null" "null" (Json.to_string (Json.Float infinity))

(* --- diagnostic type --- *)

let test_codes_unique () =
  let codes = List.map fst Diag.all_codes in
  Alcotest.(check int) "no duplicate codes"
    (List.length codes)
    (List.length (List.sort_uniq compare codes))

let test_describe () =
  Alcotest.(check bool) "W0301 documented" true (Diag.describe "W0301" <> None);
  Alcotest.(check (option string)) "unknown code" None (Diag.describe "E9999")

(* The codes this PR introduced: environment-variable validation and the
   persistent analysis cache's degradation warnings. *)
let test_store_and_env_codes_registered () =
  List.iter
    (fun code ->
      Alcotest.(check bool) (code ^ " documented") true (Diag.describe code <> None))
    [ "E0110"; "W0610"; "W0611"; "W0612" ];
  Alcotest.(check int) "store phase exits as usage" 1
    (Diag.exit_for (Diag.make Diag.Warning Diag.Store ~code:"W0612" "x"));
  Alcotest.(check string) "store phase name" "cache-store" (Diag.phase_name Diag.Store)

(* The octagon-escalation codes: the escalation notice, the paranoid
   cross-check failure, and the cache eviction for reports written under a
   different value domain. *)
let test_octagon_codes_registered () =
  List.iter
    (fun code ->
      Alcotest.(check bool) (code ^ " documented") true (Diag.describe code <> None))
    [ "W0501"; "E0503"; "W0613"; "A0512" ];
  (* E0503 is an analysis failure (the escalated solution diverged), not a
     usage problem: it must exit with the analysis code. *)
  Alcotest.(check int) "E0503 exits as analysis" 2
    (Diag.exit_for (Diag.make Diag.Error Diag.Path ~code:"E0503" "x"));
  (* W0613 is a cache-store degradation like W0611/W0612. *)
  Alcotest.(check int) "W0613 exits as usage" 1
    (Diag.exit_for (Diag.make Diag.Warning Diag.Store ~code:"W0613" "x"))

let test_pp_format () =
  let d =
    Diag.make Diag.Warning Diag.Decode ~code:"W0301"
      ~loc:(Diag.at_addr ~func:"main" 0x16c)
      ~hint:"calltargets at 0x16c = f, g" "indirect call cannot be resolved"
  in
  let s = Format.asprintf "@[<v>%a@]" Diag.pp d in
  List.iter
    (fun affix ->
      Alcotest.(check bool) ("mentions " ^ affix) true (Astring.String.is_infix ~affix s))
    [ "warning[W0301]"; "decode:"; "0x16c"; "main"; "hint:" ]

let test_exit_codes () =
  Alcotest.(check int) "frontend is usage" 1
    (Diag.exit_for (Diag.make Diag.Error Diag.Frontend ~code:"E0108" "x"));
  Alcotest.(check int) "path is analysis" 2
    (Diag.exit_for (Diag.make Diag.Error Diag.Path ~code:"E0501" "x"));
  Alcotest.(check int) "check is check-failed" 5
    (Diag.exit_for (Diag.make Diag.Error Diag.Check ~code:"E0601" "x"));
  Alcotest.(check int) "internal is 70" 70
    (Diag.exit_for (Diag.make Diag.Error Diag.Internal ~code:"E0901" "x"))

let test_collector () =
  let c = Diag.collector () in
  Alcotest.(check bool) "starts clean" false (Diag.has_errors c);
  Diag.add c (Diag.make Diag.Warning Diag.Decode ~code:"W0301" "w");
  Diag.add c (Diag.make Diag.Error Diag.Path ~code:"E0501" "e");
  Alcotest.(check int) "warnings" 1 (Diag.warning_count c);
  Alcotest.(check int) "errors" 1 (Diag.error_count c);
  (* items preserve insertion order *)
  Alcotest.(check (list string)) "order" [ "W0301"; "E0501" ]
    (List.map (fun d -> d.Diag.code) (Diag.items c))

(* --- graceful analyzer degradation --- *)

let unresolved_handler_source =
  "int sel; int ev[4]; int out; int (*handler)(int); \
   int on_can(int v) { int i; int s; s = v; for (i = 0; i < 6; i = i + 1) { s = s + i; } return s; } \
   int on_flexray(int v) { return v * 2; } \
   int main() { int i; if (sel) { handler = on_can; } else { handler = on_flexray; } out = 0; \
   for (i = 0; i < 4; i = i + 1) { out = out + handler(ev[i]); } return out; }"

let test_unresolved_call_is_partial () =
  let program = Compile.compile unresolved_handler_source in
  let report = Analyzer.analyze program in
  Alcotest.(check bool) "partial verdict" true (report.Analyzer.verdict = Analyzer.Partial);
  Alcotest.(check bool) "has a positive bound" true (report.Analyzer.wcet > 0);
  let call_holes =
    List.filter_map
      (function Analyzer.Hole_call { site; func } -> Some (site, func) | _ -> None)
      report.Analyzer.holes
  in
  Alcotest.(check int) "one call hole" 1 (List.length call_holes);
  let site, func = List.hd call_holes in
  Alcotest.(check string) "hole is in main" "main" func;
  (* the W0301 diagnostic names the same site *)
  let d =
    List.find (fun d -> d.Diag.code = "W0301") report.Analyzer.diagnostics
  in
  Alcotest.(check (option int)) "diagnostic names the site" (Some site) d.Diag.loc.Diag.addr;
  Alcotest.(check bool) "has an annotation hint" true (d.Diag.hint <> None)

let test_annotation_discharges_hole () =
  let program = Compile.compile unresolved_handler_source in
  let report = Analyzer.analyze program in
  let site =
    match report.Analyzer.holes with
    | [ Analyzer.Hole_call { site; _ } ] -> site
    | _ -> Alcotest.fail "expected exactly one call hole"
  in
  let annot =
    match Annot.parse (Printf.sprintf "calltargets at 0x%x = on_can, on_flexray" site) with
    | Ok a -> a
    | Error msg -> Alcotest.failf "annotation: %s" msg
  in
  let fixed = Analyzer.analyze ~annot program in
  Alcotest.(check bool) "complete with calltargets" true
    (fixed.Analyzer.verdict = Analyzer.Complete);
  (* the discharged bound must dominate the partial one: the partial bound
     excluded the callee's cost *)
  Alcotest.(check bool) "complete bound >= partial bound" true
    (fixed.Analyzer.wcet >= report.Analyzer.wcet)

let test_partial_bound_covers_hole_free_paths () =
  (* With sel poked so the cheap handler runs... the call is still a hole,
     so this only checks the partial analysis completes and simulation
     works; the partial bound itself promises nothing about runs through
     the hole. *)
  let program = Compile.compile unresolved_handler_source in
  let report = Analyzer.analyze program in
  Alcotest.(check bool) "partial" true (report.Analyzer.verdict = Analyzer.Partial);
  let sim = Pred32_sim.Simulator.create Pred32_hw.Hw_config.default program in
  match Pred32_sim.Simulator.run sim with
  | Pred32_sim.Simulator.Halted _ -> ()
  | o -> Alcotest.failf "simulation should halt: %a" Pred32_sim.Simulator.pp_outcome o

let test_unknown_annotation_names_degrade () =
  (* Unknown function/symbol/region names in annotations must not abort:
     each becomes a W04xx warning and the analysis still completes. *)
  let source = "int main() { int i; int s; s = 0; for (i = 0; i < 4; i = i + 1) { s = s + i; } return s; }" in
  let program = Compile.compile source in
  let annot =
    match
      Annot.parse
        "assume no_such_symbol in [0, 9]\nmaxcount no_such_function <= 3\nmemory main = no_such_region"
    with
    | Ok a -> a
    | Error msg -> Alcotest.failf "annotation: %s" msg
  in
  let report = Analyzer.analyze ~annot program in
  Alcotest.(check bool) "still complete" true (report.Analyzer.verdict = Analyzer.Complete);
  let codes = List.map (fun d -> d.Diag.code) report.Analyzer.diagnostics in
  Alcotest.(check bool) "W0401 emitted" true (List.mem "W0401" codes);
  Alcotest.(check bool) "W0402 emitted" true (List.mem "W0402" codes);
  Alcotest.(check bool) "W0403 emitted" true (List.mem "W0403" codes)

let test_complete_report_has_no_holes () =
  let program =
    Compile.compile "int main() { int i; int s; s = 0; for (i = 0; i < 8; i = i + 1) { s = s + i; } return s; }"
  in
  let report = Analyzer.analyze program in
  Alcotest.(check bool) "complete" true (report.Analyzer.verdict = Analyzer.Complete);
  Alcotest.(check int) "no holes" 0 (List.length report.Analyzer.holes)

let test_report_json_shape () =
  let program = Compile.compile unresolved_handler_source in
  let report = Analyzer.analyze program in
  let s = Json.to_string (Analyzer.report_to_json report) in
  List.iter
    (fun affix ->
      Alcotest.(check bool) ("contains " ^ affix) true (Astring.String.is_infix ~affix s))
    [ "\"verdict\":\"partial\""; "\"holes\":"; "\"W0301\""; "\"wcet\":" ]

let () =
  Alcotest.run "diag"
    [
      ( "json",
        [
          Alcotest.test_case "scalars" `Quick test_json_scalars;
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "nested" `Quick test_json_nested;
          Alcotest.test_case "non-finite floats" `Quick test_json_nonfinite_floats;
        ] );
      ( "diag",
        [
          Alcotest.test_case "codes unique" `Quick test_codes_unique;
          Alcotest.test_case "describe" `Quick test_describe;
          Alcotest.test_case "store and env codes registered" `Quick
            test_store_and_env_codes_registered;
          Alcotest.test_case "octagon escalation codes registered" `Quick
            test_octagon_codes_registered;
          Alcotest.test_case "pp format" `Quick test_pp_format;
          Alcotest.test_case "exit codes" `Quick test_exit_codes;
          Alcotest.test_case "collector" `Quick test_collector;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "unresolved call is partial" `Quick test_unresolved_call_is_partial;
          Alcotest.test_case "annotation discharges hole" `Quick test_annotation_discharges_hole;
          Alcotest.test_case "partial analysis and simulation coexist" `Quick
            test_partial_bound_covers_hole_free_paths;
          Alcotest.test_case "unknown annotation names degrade" `Quick
            test_unknown_annotation_names_degrade;
          Alcotest.test_case "complete report has no holes" `Quick
            test_complete_report_has_no_holes;
          Alcotest.test_case "report json shape" `Quick test_report_json_shape;
        ] );
    ]
