(** The cache analysis of Figure 1: classifies every instruction fetch and
    every data access as always-hit, always-miss, or not-classified, using
    must/may abstract LRU states propagated over the supergraph.

    Data addresses come from the value analysis. An access whose address
    interval cannot be narrowed damages the abstract data cache (all must
    ages grow) and must be costed against the slowest candidate memory
    region — unless a memory-region annotation (the paper's Section 4.3
    remedy) narrows the candidates, e.g. to the uncached I/O region, in
    which case the data cache is bypassed and unharmed. *)

type classification =
  | Always_hit
  | Always_miss
  | Not_classified
  | Bypass  (** uncacheable access (or cache disabled) *)

type data_access = {
  insn_index : int;
  is_store : bool;
  kind : classification;
  regions : Pred32_memory.Region.t list;  (** candidate target regions *)
}

(** Abstract cache state: must/may pair per configured cache ([None] when
    that cache is absent from the hardware configuration). Exposed so the
    persistent result cache can checkpoint and reseed converged states. *)
module Cstate : sig
  type t = { ic : Acache.t option; dc : Acache.t option }

  val leq : t -> t -> bool
  val join : t -> t -> t
end

type result = {
  fetch : classification array array;  (** per node, per instruction *)
  data : data_access list array;  (** per node *)
  node_in : Cstate.t option array;  (** converged per-node states ([None] = unreachable) *)
  node_out : Cstate.t option array;
  transfers : int;  (** fixpoint transfer count (worklist efficiency metric) *)
}

(** [run ?strategy cfg value_result ~region_hints] — [region_hints] maps a
    function name to the regions its unresolved accesses may touch (from
    annotations). [strategy] selects the shared fixpoint engine's worklist
    order (default reverse-postorder priority). [seeds] supplies cached
    per-node (in, out) states from a previous run (see
    {!Wcet_util.Fixpoint.Make.solve}). *)
val run :
  ?strategy:Wcet_util.Fixpoint.strategy ->
  ?seeds:(int -> (Cstate.t * Cstate.t) option) ->
  ?cancel:(unit -> bool) ->
  Pred32_hw.Hw_config.t ->
  Wcet_value.Analysis.result ->
  region_hints:(string -> Pred32_memory.Region.t list option) ->
  result

(** Per-node summary row for {!run_scheduled}: the external
    (cross-component) cache input the node's component received when the
    row was recorded, and the converged (in, out) states. A row is only
    valid when the value states its access sets were derived from also
    match — the caller gates the slice on that. *)
type summary_row = {
  sc_input : Cstate.t option;
  sc_states : (Cstate.t * Cstate.t) option;
}

type summary_slice = int -> summary_row option

(** Accounting from a scheduled run, for persisting fresh rows. *)
type scheduled_info = {
  sched_ext_input : Cstate.t option array;
      (** per node: external input received this run *)
  sched_components : int;  (** components activated by the dataflow *)
  sched_computed : int;  (** solved by iteration *)
  sched_applied : int;  (** installed from summary rows *)
}

(** Semantic state equality ([leq] both ways). *)
val equal_cstate : Cstate.t -> Cstate.t -> bool

(** [run_scheduled ?slice cfg value_result ~region_hints] solves the cache
    problem one call-graph component at a time over the
    reachability-filtered supergraph (see
    {!Wcet_value.Analysis.run_scheduled}); components whose members are
    covered by [slice] rows recorded under semantically equal external
    inputs are applied without transferring. *)
val run_scheduled :
  ?slice:summary_slice ->
  ?cancel:(unit -> bool) ->
  ?domains:int ->
  Pred32_hw.Hw_config.t ->
  Wcet_value.Analysis.result ->
  region_hints:(string -> Pred32_memory.Region.t list option) ->
  result * scheduled_info

val pp_classification : Format.formatter -> classification -> unit
