(** The static WCET analyzer: Figure 1 of the paper, end to end.

    [analyze] drives the phases in order — decoding / CFG reconstruction
    (with iterative indirect-call resolution), loop and value analysis,
    cache analysis, pipeline (basic-block timing) analysis, and IPET path
    analysis — and returns both the bound and every intermediate artifact
    for inspection. The per-phase wall-clock times are recorded, which is
    what the F1 experiment prints.

    Annotations supply the design-level information of Section 4.3; the
    analyzer trusts them. [Analysis_error] carries an explanation written in
    the paper's terms (which loop needs a bound, which pointer needs
    targets, and so on). *)

exception Analysis_error of string

type phase = Decode | Loop_value | Cache | Pipeline | Path

type report = {
  program : Pred32_asm.Program.t;
  hw : Pred32_hw.Hw_config.t;
  graph : Wcet_cfg.Supergraph.t;
  loops : Wcet_cfg.Loops.info;
  value : Wcet_value.Analysis.result;
  derived_bounds : Wcet_value.Loop_bounds.t;
  effective_bounds : (int * int) list;  (** (loop index, bound) after annotations *)
  unbounded_loops : (int * string) list;  (** loops still unbounded, with reasons *)
  cache : Wcet_cache.Cache_analysis.result;
  timing : Wcet_pipeline.Block_timing.t;
  solution : Wcet_ipet.Ipet.solution;
  wcet : int;  (** cycles, from program entry to halt *)
  bcet : int;  (** best-case lower bound (shortest feasible walk) *)
  phase_seconds : (phase * float) list;
}

(** [analyze ?hw ?annot ?strategy program] raises [Analysis_error] when a
    phase fails (undecodable code, unresolvable indirect control flow,
    unannotated recursion, or an unbounded path problem). [strategy] picks
    the fixpoint worklist order of the value and cache analyses; the default
    reverse-postorder priority worklist gives the same fixpoint as [Fifo]
    with strictly fewer transfers on structured programs (compare
    [report.value.transfers] across the two). *)
val analyze :
  ?hw:Pred32_hw.Hw_config.t ->
  ?annot:Wcet_annot.Annot.t ->
  ?strategy:Wcet_util.Fixpoint.strategy ->
  Pred32_asm.Program.t ->
  report

(** [analyze_modes ?hw ~base ~modes program] runs one analysis per operating
    mode (merging each mode's annotations into [base]) plus the
    mode-oblivious analysis, returning [(mode name, report)] pairs with
    [None] keyed as ["(all modes)"] first. *)
val analyze_modes :
  ?hw:Pred32_hw.Hw_config.t ->
  base:Wcet_annot.Annot.t ->
  modes:(string * Wcet_annot.Annot.t) list ->
  Pred32_asm.Program.t ->
  (string * report) list

val phase_name : phase -> string
val pp_report : Format.formatter -> report -> unit
