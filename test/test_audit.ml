(* Analyzability-auditor tests: one fixture per challenge class of the
   paper's Sections 3 and 4 — the audit must emit the matching A05xx
   finding, grade the program correctly, and flip the finding to Info once
   the discharge annotation is supplied. Plus the checker edge cases
   (nested loops sharing a counter, three-function mutual recursion, goto
   back into a loop body) with their source/binary cross-references, and
   the JSON schema round-trip. *)

module Compile = Minic.Compile
module Codegen = Minic.Codegen
module Sim = Pred32_sim.Simulator
module Hw_config = Pred32_hw.Hw_config
module Analyzer = Wcet_core.Analyzer
module Annot = Wcet_annot.Annot
module Audit = Misra.Audit
module Checker = Misra.Checker
module Diag = Wcet_diag.Diag
module Json = Wcet_diag.Json
module Program = Pred32_asm.Program

let annot_exn text =
  match Annot.parse text with
  | Ok a -> a
  | Error msg -> Alcotest.failf "bad annotation: %s" msg

let user_violations ?options source =
  Checker.check (Compile.frontend_with_runtime ?options source)
  |> List.filter (fun (v : Checker.violation) ->
         not (String.length v.Checker.func > 1 && String.sub v.Checker.func 0 2 = "__"))

let coverage_of ?(hw = Hw_config.default) ?(pokes = []) program =
  let sim = Sim.create hw program in
  List.iter (fun (sym, idx, v) -> Sim.poke_symbol sim sym idx v) pokes;
  match Sim.run sim with
  | Sim.Halted _ -> Some (fun addr -> Sim.exec_count sim addr)
  | Sim.Faulted _ | Sim.Out_of_fuel _ -> None

(* Compile, analyze and audit in one step; analysis failure goes through
   [of_failure] exactly like the CLI. *)
let audit ?options ?(hw = Hw_config.default) ?(annot = Annot.empty) ?(misra = []) ?coverage
    source =
  let program = Compile.compile ?options source in
  match Analyzer.analyze ~hw ~annot program with
  | report -> Audit.of_report ~misra ~annot ?coverage report
  | exception Analyzer.Analysis_failed ds -> Audit.of_failure ds

let with_code code (t : Audit.t) =
  List.filter (fun (f : Audit.finding) -> f.Audit.code = code) t.Audit.findings

let has_code code t = with_code code t <> []

let severities code t =
  List.map (fun (f : Audit.finding) -> f.Audit.severity) (with_code code t)

let check_grade name expected (t : Audit.t) =
  Alcotest.(check string) name (Audit.grade_name expected) (Audit.grade_name t.Audit.grade)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

(* --- tier-1: indirect calls (A0501 / A0502) --- *)

let fptr_source =
  "int sel; int ev[4]; int out; int (*handler)(int); \
   int on_can(int v) { int i; int s; s = v; for (i = 0; i < 6; i = i + 1) { s = s + i; } return s; } \
   int on_flexray(int v) { return v * 2; } \
   int main() { int i; if (sel) { handler = on_can; } else { handler = on_flexray; } out = 0; \
   for (i = 0; i < 4; i = i + 1) { out = out + handler(ev[i]); } return out; }"

let calltargets_annot program =
  let sites =
    List.concat_map
      (fun f ->
        Program.disassemble program f
        |> List.filter_map (fun (addr, insn) ->
               match insn with Pred32_isa.Insn.Call_reg _ -> Some addr | _ -> None))
      program.Program.functions
  in
  {
    Annot.empty with
    Annot.call_targets = List.map (fun s -> (s, [ "on_can"; "on_flexray" ])) sites;
  }

let test_indirect_call_unresolved () =
  let t = audit fptr_source in
  Alcotest.(check bool) "A0501 fires" true (has_code "A0501" t);
  Alcotest.(check bool) "A0501 is a warning" true (severities "A0501" t = [ Diag.Warning ]);
  check_grade "needs annotations" Audit.Needs_annotations t;
  let f = List.hd (with_code "A0501" t) in
  (match f.Audit.suggestion with
  | Some s -> Alcotest.(check bool) "suggests calltargets" true (contains s "calltargets")
  | None -> Alcotest.fail "A0501 carries no suggestion");
  Alcotest.(check bool) "tier-1" true (f.Audit.tier = Audit.Tier1)

let test_indirect_call_annotated () =
  let program = Compile.compile fptr_source in
  let annot = calltargets_annot program in
  let t =
    match Analyzer.analyze ~annot program with
    | report -> Audit.of_report ~annot report
    | exception Analyzer.Analysis_failed ds -> Audit.of_failure ds
  in
  Alcotest.(check bool) "A0501 gone" false (has_code "A0501" t);
  Alcotest.(check bool) "A0502 fires" true (has_code "A0502" t);
  let f = List.hd (with_code "A0502" t) in
  Alcotest.(check bool) "names the annotation" true
    (contains f.Audit.message "calltargets annotation");
  Alcotest.(check bool) "lists a target" true (contains f.Audit.message "on_can")

let test_indirect_call_value_resolved () =
  (* constant handler: resolved by the value analysis without annotation *)
  let t =
    audit
      "int ev[4]; int out; int on_tick(int v) { return v + 1; } \
       int main() { int i; int (*h)(int); h = on_tick; out = 0; \
       for (i = 0; i < 4; i = i + 1) { out = out + h(ev[i]); } return out; }"
  in
  Alcotest.(check bool) "A0502 fires" true (has_code "A0502" t);
  let f = List.hd (with_code "A0502" t) in
  Alcotest.(check bool) "credits the value analysis" true
    (contains f.Audit.message "value analysis");
  check_grade "analyzable" Audit.Analyzable t

(* --- tier-1: indirect jumps (A0503 / A0504) --- *)

let longjmp_source =
  "int codes[8]; int out; int buf[3]; \
   void process(int c) { if (c < 0) { __longjmp(buf, 1); } out = out + c; } \
   int main() { int i; int r; r = __setjmp(buf); if (r != 0) { return 0 - 1; } \
   for (i = 0; i < 8; i = i + 1) { process(codes[i]); } return out; }"

let setjmp_annot program =
  let continuations = Wcet_cfg.Resolver.scan_setjmp_continuations program in
  {
    Annot.empty with
    Annot.setjmp_auto = true;
    loop_bounds = List.map (fun c -> (Annot.At_addr c, 1)) continuations;
  }

let test_indirect_jump_unresolved () =
  let t = audit longjmp_source in
  Alcotest.(check bool) "A0503 fires" true (has_code "A0503" t);
  Alcotest.(check bool) "A0503 is an error" true (List.mem Diag.Error (severities "A0503" t));
  check_grade "unanalyzable" Audit.Unanalyzable t;
  let f = List.hd (with_code "A0503" t) in
  match f.Audit.suggestion with
  | Some s -> Alcotest.(check bool) "suggests setjmp auto" true (contains s "setjmp auto")
  | None -> Alcotest.fail "A0503 carries no suggestion"

let test_indirect_jump_resolved () =
  let program = Compile.compile longjmp_source in
  let annot = setjmp_annot program in
  let t =
    match Analyzer.analyze ~annot program with
    | report -> Audit.of_report ~annot report
    | exception Analyzer.Analysis_failed ds -> Audit.of_failure ds
  in
  Alcotest.(check bool) "A0503 gone" false (has_code "A0503" t);
  Alcotest.(check bool) "A0504 fires" true (has_code "A0504" t);
  Alcotest.(check bool) "A0504 is informational" true (severities "A0504" t = [ Diag.Info ])

(* --- tier-1: loop-bound provenance (A0505 / A0506) --- *)

let input_loop_source =
  "int n; int main() { int s; int i; s = 0; for (i = 0; i < n; i = i + 1) { s = s + 2; } \
   return s; }"

let test_input_dependent_loop () =
  let t = audit input_loop_source in
  Alcotest.(check bool) "A0505 fires" true (has_code "A0505" t);
  Alcotest.(check bool) "A0505 is a warning" true (severities "A0505" t = [ Diag.Warning ]);
  check_grade "needs annotations" Audit.Needs_annotations t;
  let f = List.hd (with_code "A0505" t) in
  (match f.Audit.suggestion with
  | Some s -> Alcotest.(check bool) "suggests a loop bound" true (contains s "bound")
  | None -> Alcotest.fail "A0505 carries no suggestion");
  Alcotest.(check bool) "anchored in main" true (f.Audit.func = Some "main")

let test_input_loop_discharged () =
  let t = audit ~annot:(annot_exn "loop in main bound 64") input_loop_source in
  Alcotest.(check bool) "A0505 still recorded" true (has_code "A0505" t);
  Alcotest.(check bool) "A0505 demoted to info" true (severities "A0505" t = [ Diag.Info ]);
  let f = List.hd (with_code "A0505" t) in
  Alcotest.(check bool) "notes the discharge" true (contains f.Audit.message "discharged");
  check_grade "analyzable" Audit.Analyzable t

(* Checker edge case: nested loops sharing one counter — 13.6 at the
   source, irregular-counter A0506 at the binary, cross-referenced. *)
let shared_counter_source =
  "int data; int out; int main() { int i; int j; int s; s = 0; \
   for (i = 0; i < 40; i = i + 1) { for (j = 0; j < 4; j = j + 1) { i = i + j; } s = s + 1; } \
   out = s; return s; }"

let test_shared_counter_crossref () =
  let misra = user_violations shared_counter_source in
  Alcotest.(check bool) "checker flags 13.6" true
    (List.exists (fun (v : Checker.violation) -> v.Checker.rule = Checker.R13_6) misra);
  let t = audit ~misra shared_counter_source in
  Alcotest.(check bool) "A0506 fires" true (has_code "A0506" t);
  let f = List.hd (with_code "A0506" t) in
  Alcotest.(check bool) "cross-refs rule 13.6" true (List.mem "13.6" f.Audit.rules);
  Alcotest.(check bool) "confirms the source violation" true
    (contains f.Audit.message "confirms source-level MISRA 13.6")

(* --- tier-1: irreducible regions (A0507) --- *)

(* Checker edge case: goto jumping backward into a loop body — 14.4 at the
   source, an irreducible region at the binary. *)
let goto_cycle_source =
  "int flag; int acc; int main() { int i; i = 0; acc = 0; \
   if (flag) { goto inside; } top: acc = acc + 1; inside: acc = acc + 2; i = i + 1; \
   if (i < 50) { goto top; } return acc; }"

let irreducible_annot program =
  let graph = Wcet_cfg.Supergraph.build program in
  let loops = Wcet_cfg.Loops.analyze graph in
  let facts =
    List.concat_map
      (fun scc ->
        List.map
          (fun nid ->
            let node = graph.Wcet_cfg.Supergraph.nodes.(nid) in
            Annot.Max_count
              (Annot.At_addr node.Wcet_cfg.Supergraph.block.Wcet_cfg.Func_cfg.entry, 52))
          scc)
      loops.Wcet_cfg.Loops.irreducible
  in
  { Annot.empty with Annot.flow_facts = facts }

let test_goto_irreducible_crossref () =
  let misra = user_violations goto_cycle_source in
  Alcotest.(check bool) "checker flags 14.4" true
    (List.exists (fun (v : Checker.violation) -> v.Checker.rule = Checker.R14_4) misra);
  let t = audit ~misra goto_cycle_source in
  Alcotest.(check bool) "A0507 fires" true (has_code "A0507" t);
  Alcotest.(check bool) "A0507 is an error" true (List.mem Diag.Error (severities "A0507" t));
  check_grade "unanalyzable" Audit.Unanalyzable t;
  let f = List.hd (with_code "A0507" t) in
  Alcotest.(check bool) "cross-refs rule 14.4" true (List.mem "14.4" f.Audit.rules);
  Alcotest.(check bool) "confirms the source violation" true
    (contains f.Audit.message "confirms source-level MISRA 14.4")

let test_irreducible_with_flow_facts () =
  let program = Compile.compile goto_cycle_source in
  let annot = irreducible_annot program in
  let t =
    match Analyzer.analyze ~annot program with
    | report -> Audit.of_report ~annot report
    | exception Analyzer.Analysis_failed ds -> Audit.of_failure ds
  in
  Alcotest.(check bool) "A0507 still recorded" true (has_code "A0507" t);
  Alcotest.(check bool) "A0507 demoted to info" true (severities "A0507" t = [ Diag.Info ])

(* --- tier-1: recursion (A0513) --- *)

let test_recursion_unannotated () =
  let t =
    audit "int fact(int n) { if (n < 2) { return 1; } return n * fact(n - 1); } \
           int main() { return fact(12); }"
  in
  check_grade "unanalyzable" Audit.Unanalyzable t;
  Alcotest.(check bool) "A0513 fires" true (has_code "A0513" t);
  Alcotest.(check bool) "failure diagnostics kept" true
    (List.exists (fun (d : Diag.t) -> d.Diag.code = "E0202") t.Audit.failure)

let test_recursion_three_function_cycle () =
  (* Checker edge case: mutual recursion through three functions. *)
  let source =
    "int f(int n) { if (n < 1) { return 0; } return g(n - 1); } \
     int g(int n) { return h(n); } \
     int h(int n) { return f(n); } \
     int main() { return f(6); }"
  in
  let misra = user_violations source in
  Alcotest.(check bool) "checker flags 16.2" true
    (List.exists (fun (v : Checker.violation) -> v.Checker.rule = Checker.R16_2) misra);
  let t = audit ~misra source in
  check_grade "unanalyzable" Audit.Unanalyzable t;
  Alcotest.(check bool) "A0513 fires" true (has_code "A0513" t)

let test_recursion_annotated () =
  let t =
    audit
      ~annot:(annot_exn "recursion fact depth 13")
      "int fact(int n) { if (n < 2) { return 1; } return n * fact(n - 1); } \
       int main() { return fact(12); }"
  in
  Alcotest.(check bool) "A0513 recorded" true (has_code "A0513" t);
  Alcotest.(check bool) "A0513 demoted to info" true (severities "A0513" t = [ Diag.Info ]);
  let f = List.hd (with_code "A0513" t) in
  Alcotest.(check bool) "notes the unrolling depth" true
    (contains f.Audit.message "depth bounded by annotation")

(* --- tier-2: operating modes (A0508) --- *)

let modes_source =
  "int mode; int sensor[8]; int out; \
   int nav_update() { int i; int s; s = 0; for (i = 0; i < 8; i = i + 1) { s = s + sensor[i]; } return s; } \
   int flight_control() { int i; int s; s = 0; for (i = 0; i < 150; i = i + 1) { s = s + i * 2; } return s + nav_update(); } \
   int ground_control() { int s; s = nav_update(); return s >> 3; } \
   int main() { if (mode == 1) { out = flight_control(); } else { out = ground_control(); } return out; }"

let test_modes_detected () =
  let t = audit modes_source in
  Alcotest.(check bool) "A0508 fires" true (has_code "A0508" t);
  Alcotest.(check bool) "A0508 is a warning" true (List.mem Diag.Warning (severities "A0508" t));
  let f = List.hd (with_code "A0508" t) in
  Alcotest.(check bool) "names the mode variable" true (contains f.Audit.message "'mode'");
  match f.Audit.suggestion with
  | Some s -> Alcotest.(check bool) "suggests an assume" true (contains s "assume mode")
  | None -> Alcotest.fail "A0508 carries no suggestion"

let test_modes_pinned () =
  let t = audit ~annot:(annot_exn "assume mode = 0") modes_source in
  Alcotest.(check bool) "A0508 recorded" true (has_code "A0508" t);
  Alcotest.(check bool) "A0508 demoted to info" true (severities "A0508" t = [ Diag.Info ])

(* --- tier-2: imprecise memory accesses (A0509) --- *)

let memory_source =
  "int base_addr; scratch int regs[16]; int out; \
   int poll(int *base) { int i; int s; s = 0; for (i = 0; i < 12; i = i + 1) { s = s + base[i]; } return s; } \
   int main() { out = poll((int*)base_addr); return out; }"

let test_memory_imprecise () =
  let t = audit memory_source in
  Alcotest.(check bool) "A0509 fires" true (has_code "A0509" t);
  let warn =
    List.filter (fun (f : Audit.finding) -> f.Audit.severity = Diag.Warning) (with_code "A0509" t)
  in
  Alcotest.(check bool) "warning in poll" true
    (List.exists (fun (f : Audit.finding) -> f.Audit.func = Some "poll") warn);
  Alcotest.(check bool) "counts the candidate regions" true
    (List.exists (fun (f : Audit.finding) -> contains f.Audit.message "memory regions") warn)

let test_memory_annotated () =
  let t = audit ~annot:(annot_exn "memory poll = scratch") memory_source in
  let poll_warnings =
    List.filter
      (fun (f : Audit.finding) ->
        f.Audit.code = "A0509" && f.Audit.func = Some "poll" && f.Audit.severity = Diag.Warning)
      t.Audit.findings
  in
  Alcotest.(check int) "no open A0509 in poll" 0 (List.length poll_warnings)

(* --- tier-2: error handling on the critical path (A0510) --- *)

let error_source =
  "int errs; int out; \
   void recover(int k) { int i; for (i = 0; i < 120; i = i + 1) { out = out + k + i; } } \
   int main() { int i; int s; s = 0; for (i = 0; i < 12; i = i + 1) { if ((errs >> i) & 1) { recover(i); } s = s + i; } return s; }"

let test_error_handling () =
  let program = Compile.compile error_source in
  (* nominal run: no errors raised, so [recover] never executes *)
  let coverage = coverage_of program in
  Alcotest.(check bool) "nominal run halts" true (coverage <> None);
  let report = Analyzer.analyze program in
  let t = Audit.of_report ?coverage report in
  Alcotest.(check bool) "A0510 fires" true (has_code "A0510" t);
  let f = List.hd (with_code "A0510" t) in
  Alcotest.(check bool) "anchored in recover" true (f.Audit.func = Some "recover");
  Alcotest.(check bool) "suggests a maxcount" true
    (match f.Audit.suggestion with Some s -> contains s "maxcount" | None -> false);
  (* no coverage, no error-handling heuristic *)
  let t2 = Audit.of_report report in
  Alcotest.(check bool) "silent without coverage" false (has_code "A0510" t2)

let test_error_handling_flow_fact () =
  let program = Compile.compile error_source in
  let coverage = coverage_of program in
  let annot = annot_exn "maxcount recover <= 1" in
  let report = Analyzer.analyze ~annot program in
  let t = Audit.of_report ~annot ?coverage report in
  let open_warnings =
    List.filter
      (fun (f : Audit.finding) -> f.Audit.code = "A0510" && f.Audit.severity = Diag.Warning)
      t.Audit.findings
  in
  Alcotest.(check int) "flow fact silences the warning" 0 (List.length open_warnings)

(* --- tier-2: software arithmetic (A0511) --- *)

let div_source =
  "unsigned xs[8]; unsigned ys[8]; unsigned out; \
   int main() { int i; out = 0; for (i = 0; i < 8; i = i + 1) { out = out + xs[i] / ys[i]; } \
   return (int)(out & 0xFFFF); }"

let soft_div = { Codegen.default_options with Codegen.soft_div = true }

let test_softarith_unbounded () =
  let t = audit ~options:soft_div ~hw:Hw_config.no_hw_div div_source in
  Alcotest.(check bool) "A0511 fires" true (has_code "A0511" t);
  let f = List.hd (with_code "A0511" t) in
  Alcotest.(check bool) "names the runtime routine" true
    (match f.Audit.func with Some fn -> contains fn "__udiv" | None -> false);
  Alcotest.(check bool) "warns about the unbounded iteration" true
    (f.Audit.severity = Diag.Warning && contains f.Audit.message "unbounded")

let test_softarith_bounded () =
  let t =
    audit ~options:soft_div ~hw:Hw_config.no_hw_div
      ~annot:(annot_exn "loop in __udivmod32 bound 40")
      div_source
  in
  Alcotest.(check bool) "A0511 recorded" true (has_code "A0511" t);
  Alcotest.(check bool) "A0511 demoted to info" true (severities "A0511" t = [ Diag.Info ]);
  let f = List.hd (with_code "A0511" t) in
  Alcotest.(check bool) "reports the bounded loops" true (contains f.Audit.message "bounded")

(* --- tier-2: semantically unreachable code (A0512, rule 14.1 variant) --- *)

let test_semantic_unreachable () =
  let source =
    "int out; int main() { int flag; int i; flag = 0; \
     if (flag) { for (i = 0; i < 500; i = i + 1) { out = out + i; } } return out; }"
  in
  (* the syntactic checker sees nothing: every statement is reachable in
     the source CFG; only the value analysis proves the branch dead *)
  let misra = user_violations source in
  Alcotest.(check bool) "syntactic 14.1 silent" false
    (List.exists (fun (v : Checker.violation) -> v.Checker.rule = Checker.R14_1) misra);
  let t = audit ~misra source in
  Alcotest.(check bool) "A0512 fires" true (has_code "A0512" t);
  let f = List.hd (with_code "A0512" t) in
  Alcotest.(check bool) "informational" true (f.Audit.severity = Diag.Info);
  Alcotest.(check bool) "cross-refs rule 14.1" true (List.mem "14.1" f.Audit.rules)

(* --- schema: JSON round-trip and code registration --- *)

let test_codes_registered () =
  List.iter
    (fun code ->
      match Diag.describe code with
      | Some _ -> ()
      | None -> Alcotest.failf "finding code %s is not in Diag.all_codes" code)
    [ "A0501"; "A0502"; "A0503"; "A0504"; "A0505"; "A0506"; "A0507"; "A0508"; "A0509";
      "A0510"; "A0511"; "A0512"; "A0513" ]

let rec json_field name = function
  | Json.Obj fields -> List.assoc_opt name fields
  | _ -> ignore json_field; None

let test_json_schema () =
  let t = audit modes_source in
  (match Audit.to_json t with
  | Json.Obj fields ->
    List.iter
      (fun key ->
        Alcotest.(check bool) (key ^ " present") true (List.mem_assoc key fields))
      [ "grade"; "per_function"; "findings"; "failure" ];
    (match List.assoc "findings" fields with
    | Json.List (first :: _) ->
      (* every finding uses the shared Diag schema plus the audit extras *)
      List.iter
        (fun key ->
          Alcotest.(check bool) ("finding field " ^ key) true
            (json_field key first <> None))
        [ "severity"; "phase"; "code"; "message"; "tier"; "section"; "rules" ]
    | _ -> Alcotest.fail "no findings in JSON report")
  | _ -> Alcotest.fail "audit JSON is not an object");
  (* the MISRA bridge emits the same Diag schema *)
  let misra = user_violations shared_counter_source in
  match misra with
  | [] -> Alcotest.fail "expected a violation to bridge"
  | v :: _ -> (
    match Diag.to_json (Audit.violation_to_diag v) with
    | Json.Obj fields ->
      List.iter
        (fun key ->
          Alcotest.(check bool) ("violation field " ^ key) true (List.mem_assoc key fields))
        [ "severity"; "phase"; "code"; "message" ];
      (match List.assoc "code" fields with
      | Json.String c ->
        Alcotest.(check bool) "M-code registered" true (Diag.describe c <> None)
      | _ -> Alcotest.fail "violation code is not a string")
    | _ -> Alcotest.fail "violation JSON is not an object")

let test_metrics_populated () =
  Wcet_obs.Obs.enable ();
  Wcet_obs.Metrics.reset ();
  ignore (audit modes_source);
  Wcet_obs.Obs.disable ();
  match Wcet_obs.Metrics.find "audit_findings{code=A0508}" with
  | Some (Wcet_obs.Metrics.Counter_value n) ->
    Alcotest.(check bool) "A0508 counter incremented" true (n >= 1)
  | _ -> Alcotest.fail "audit_findings{code=A0508} not registered"

let test_per_function_grades () =
  let t = audit modes_source in
  let grade fn =
    match List.assoc_opt fn t.Audit.per_function with
    | Some g -> Audit.grade_name g
    | None -> Alcotest.failf "no per-function grade for %s" fn
  in
  (* the mode guard sits in main; the leaf arithmetic is clean *)
  Alcotest.(check string) "main needs annotations" "needs-annotations" (grade "main");
  Alcotest.(check string) "nav_update analyzable" "analyzable" (grade "nav_update")

let () =
  Alcotest.run "audit"
    [
      ( "tier-1",
        [
          Alcotest.test_case "unresolved indirect call" `Quick test_indirect_call_unresolved;
          Alcotest.test_case "calltargets discharge" `Quick test_indirect_call_annotated;
          Alcotest.test_case "value-resolved indirect call" `Quick
            test_indirect_call_value_resolved;
          Alcotest.test_case "unresolved indirect jump" `Quick test_indirect_jump_unresolved;
          Alcotest.test_case "setjmp-auto discharge" `Quick test_indirect_jump_resolved;
          Alcotest.test_case "input-dependent loop" `Quick test_input_dependent_loop;
          Alcotest.test_case "loop-bound discharge" `Quick test_input_loop_discharged;
          Alcotest.test_case "shared counter cross-ref (13.6)" `Quick
            test_shared_counter_crossref;
          Alcotest.test_case "goto into loop cross-ref (14.4)" `Quick
            test_goto_irreducible_crossref;
          Alcotest.test_case "irreducible flow-fact discharge" `Quick
            test_irreducible_with_flow_facts;
          Alcotest.test_case "unannotated recursion" `Quick test_recursion_unannotated;
          Alcotest.test_case "three-function recursion (16.2)" `Quick
            test_recursion_three_function_cycle;
          Alcotest.test_case "annotated recursion" `Quick test_recursion_annotated;
        ] );
      ( "tier-2",
        [
          Alcotest.test_case "operating modes" `Quick test_modes_detected;
          Alcotest.test_case "mode pinned by assume" `Quick test_modes_pinned;
          Alcotest.test_case "imprecise memory" `Quick test_memory_imprecise;
          Alcotest.test_case "memory annotation" `Quick test_memory_annotated;
          Alcotest.test_case "error handling" `Quick test_error_handling;
          Alcotest.test_case "error-handling flow fact" `Quick test_error_handling_flow_fact;
          Alcotest.test_case "software arithmetic unbounded" `Quick test_softarith_unbounded;
          Alcotest.test_case "software arithmetic bounded" `Quick test_softarith_bounded;
          Alcotest.test_case "semantic 14.1 unreachable" `Quick test_semantic_unreachable;
        ] );
      ( "schema",
        [
          Alcotest.test_case "codes registered" `Quick test_codes_registered;
          Alcotest.test_case "JSON schema" `Quick test_json_schema;
          Alcotest.test_case "metrics populated" `Quick test_metrics_populated;
          Alcotest.test_case "per-function grades" `Quick test_per_function_grades;
        ] );
    ]
