module Supergraph = Wcet_cfg.Supergraph
module Loops = Wcet_cfg.Loops
module Analysis = Wcet_value.Analysis
module Aval = Wcet_value.Aval

type counts = (int * int) list

type edge = {
  e_src : int;
  e_dst : int;
  e_orig_src : int;
  e_kind : Supergraph.edge_kind;
  e_w : int;
  e_tail : counts;
  e_via : int option;
}

type writes = All | Ranges of (int * int) list

type proxy = {
  p_loop : int;
  p_bound : int;
  p_cycle : counts;
  p_cycle_cost : int;
  p_terminals : (int * counts) list;
  p_writes : writes;
}

type t = {
  value : Analysis.result;
  times : int array;
  weight : int array;
  out_edges : edge list array;
  alive : bool array;
  proxy : proxy option array;
  entry : int;
}

exception Failed of Path_analysis.error

let merge_counts (lists : (counts * int) list) : counts =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (cs, mult) ->
      if mult <> 0 then
        List.iter
          (fun (v, k) ->
            let prev = Option.value ~default:0 (Hashtbl.find_opt tbl v) in
            Hashtbl.replace tbl v (prev + (k * mult)))
          cs)
    lists;
  Hashtbl.fold (fun v k acc -> if k = 0 then acc else (v, k) :: acc) tbl []
  |> List.sort compare

let counts_to_array ~n cs =
  let a = Array.make n 0 in
  List.iter (fun (v, k) -> if v >= 0 && v < n then a.(v) <- a.(v) + k) cs;
  a

(* Longest path over alive nodes within [allowed], skipping [skip] edges,
   starting at [start]. A grey hit during the DFS means a cycle survived
   collapsing — some loop has no bound to anchor on. *)
let longest t ~allowed ~skip start =
  let n = Array.length t.alive in
  let dist = Array.make n min_int in
  let best_in = Array.make n None in
  let state = Array.make n 0 in
  let order = ref [] in
  let rec visit v =
    state.(v) <- 1;
    List.iter
      (fun e ->
        if (not (skip e)) && t.alive.(e.e_dst) && allowed e.e_dst then
          match state.(e.e_dst) with
          | 0 -> visit e.e_dst
          | 1 ->
            raise
              (Failed
                 (Path_analysis.unbounded
                    (Printf.sprintf
                       "cycle through node %d has neither a derived loop bound nor an annotation"
                       e.e_dst)))
          | _ -> ())
      t.out_edges.(v);
    state.(v) <- 2;
    order := v :: !order
  in
  visit start;
  dist.(start) <- t.weight.(start);
  List.iter
    (fun v ->
      if dist.(v) > min_int then
        List.iter
          (fun e ->
            if (not (skip e)) && t.alive.(e.e_dst) && allowed e.e_dst then begin
              let cand = dist.(v) + e.e_w + t.weight.(e.e_dst) in
              if cand > dist.(e.e_dst) then begin
                dist.(e.e_dst) <- cand;
                best_in.(e.e_dst) <- Some e
              end
            end)
          t.out_edges.(v))
    !order;
  (dist, best_in)

(* Expand the DP witness path ending at [last] into execution counts:
   plain nodes count once, proxies contribute bound * cycle, collapsed
   tails ride on the edges. *)
let path_counts t ~best_in last =
  let parts = ref [] in
  let add_node v =
    match t.proxy.(v) with
    | Some p -> parts := (p.p_cycle, p.p_bound) :: !parts
    | None -> parts := ([ (v, 1) ], 1) :: !parts
  in
  let rec go v =
    add_node v;
    match best_in.(v) with
    | None -> ()
    | Some e ->
      parts := (e.e_tail, 1) :: !parts;
      go e.e_src
  in
  go last;
  merge_counts !parts

(* Word addresses a loop body may store to. A store whose address interval
   is unresolved havocs everything. Ranges are widened by the access width
   so any tracked word overlapping a store is considered written. *)
let body_writes (value : Analysis.result) body =
  let exception Unknown in
  try
    let rs =
      List.concat_map
        (fun v ->
          List.filter_map
            (fun (a : Analysis.access) ->
              if not a.Analysis.is_store then None
              else
                match a.Analysis.addr with
                | Aval.Bot -> None
                | Aval.Top -> raise Unknown
                | Aval.I (lo, hi) -> Some (lo - 3, hi + 3))
            value.Analysis.accesses.(v))
        body
    in
    Ranges rs
  with Unknown -> All

let collapse t (loops : Loops.info) (spec : Path_analysis.spec) li =
  let loop = loops.Loops.loops.(li) in
  let h = loop.Loops.header in
  if t.alive.(h) then begin
    let is_back e = e.e_dst = h && List.mem (e.e_orig_src, h) loop.Loops.back_edges in
    let alive_body = List.filter (fun v -> t.alive.(v)) loop.Loops.body in
    let has_back = List.exists (fun v -> List.exists is_back t.out_edges.(v)) alive_body in
    if has_back then begin
      let bound =
        match List.assoc_opt li spec.Path_analysis.loop_bounds with
        | Some b -> max 0 b
        | None ->
          raise
            (Failed
               (Path_analysis.unbounded
                  (Printf.sprintf
                     "loop headed at node %d has neither a derived bound nor an annotation" h)))
      in
      let in_body = Array.make (Array.length t.alive) false in
      List.iter (fun v -> in_body.(v) <- true) loop.Loops.body;
      let dist, best_in = longest t ~allowed:(fun v -> in_body.(v)) ~skip:is_back h in
      let best = ref None in
      List.iter
        (fun v ->
          if dist.(v) > min_int then
            List.iter
              (fun e ->
                if is_back e then begin
                  let c = dist.(v) + e.e_w in
                  match !best with
                  | Some (c0, _, _) when c0 >= c -> ()
                  | _ -> best := Some (c, v, e)
                end)
              t.out_edges.(v))
        alive_body;
      let p_cycle_cost, p_cycle =
        match !best with
        | None -> (0, [])
        | Some (c, v, e) ->
          (c, merge_counts [ (path_counts t ~best_in v, 1); (e.e_tail, 1) ])
      in
      let exits = ref [] and terminals = ref [] in
      List.iter
        (fun v ->
          if dist.(v) > min_int then begin
            let pc = lazy (path_counts t ~best_in v) in
            (match t.proxy.(v) with
            | Some p when v <> h ->
              List.iter
                (fun (tc, tcs) ->
                  terminals :=
                    (dist.(v) + tc, merge_counts [ (Lazy.force pc, 1); (tcs, 1) ])
                    :: !terminals)
                p.p_terminals
            | _ -> ());
            if t.out_edges.(v) = [] then terminals := (dist.(v), Lazy.force pc) :: !terminals;
            List.iter
              (fun e ->
                if (not (is_back e)) && not in_body.(e.e_dst) then
                  exits :=
                    {
                      e with
                      e_src = h;
                      e_w = dist.(v) + e.e_w;
                      e_tail = merge_counts [ (Lazy.force pc, 1); (e.e_tail, 1) ];
                      e_via = Some li;
                    }
                    :: !exits)
              t.out_edges.(v)
          end)
        alive_body;
      t.proxy.(h) <-
        Some
          {
            p_loop = li;
            p_bound = bound;
            p_cycle;
            p_cycle_cost;
            p_terminals = !terminals;
            p_writes = body_writes t.value loop.Loops.body;
          };
      t.weight.(h) <- bound * p_cycle_cost;
      t.out_edges.(h) <- !exits;
      List.iter (fun v -> if v <> h then t.alive.(v) <- false) loop.Loops.body
    end
  end

let build (spec : Path_analysis.spec) (loops : Loops.info) =
  let value = spec.Path_analysis.value in
  let graph = value.Analysis.graph in
  let n = Array.length graph.Supergraph.nodes in
  if loops.Loops.irreducible <> [] then
    raise
      (Failed
         (Path_analysis.intractable
            "irreducible control flow: structural backends have no loop header to anchor on \
             (IPET can still bound it via flow facts)"));
  let t =
    {
      value;
      times = spec.Path_analysis.times;
      weight =
        Array.init n (fun i ->
            if i < Array.length spec.Path_analysis.times then spec.Path_analysis.times.(i)
            else 0);
      out_edges =
        Array.init n (fun u ->
            if Analysis.reachable value u then
              List.map
                (fun (k, v) ->
                  { e_src = u; e_dst = v; e_orig_src = u; e_kind = k; e_w = 0; e_tail = []; e_via = None })
                (Analysis.feasible_successors value u)
            else []);
      alive = Array.init n (Analysis.reachable value);
      proxy = Array.make n None;
      entry = graph.Supergraph.entry;
    }
  in
  let nloops = Array.length loops.Loops.loops in
  let order = List.init nloops Fun.id in
  let order =
    List.sort
      (fun a b ->
        compare loops.Loops.loops.(b).Loops.depth loops.Loops.loops.(a).Loops.depth)
      order
  in
  List.iter (collapse t loops spec) order;
  t

let solve_dag t =
  if not t.alive.(t.entry) then
    raise (Failed (Path_analysis.internal "entry node unreachable in the collapsed forest"));
  let dist, best_in = longest t ~allowed:(fun _ -> true) ~skip:(fun _ -> false) t.entry in
  let best = ref None in
  let consider c mk =
    match !best with Some (c0, _) when c0 >= c -> () | _ -> best := Some (c, mk)
  in
  Array.iteri
    (fun v d ->
      if t.alive.(v) && d > min_int then begin
        (match t.proxy.(v) with
        | Some p ->
          List.iter
            (fun (tc, tcs) ->
              consider (d + tc) (fun () ->
                  merge_counts [ (path_counts t ~best_in v, 1); (tcs, 1) ]))
            p.p_terminals
        | None -> ());
        if t.out_edges.(v) = [] then consider d (fun () -> path_counts t ~best_in v)
      end)
    dist;
  match !best with
  | None ->
    raise (Failed (Path_analysis.unbounded "no halting path is reachable from the entry"))
  | Some (c, mk) -> (c, mk ())
