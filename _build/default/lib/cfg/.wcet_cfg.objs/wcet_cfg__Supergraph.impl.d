lib/cfg/supergraph.ml: Array Format Func_cfg Hashtbl List Option Pred32_asm Queue Resolver String
