module Supergraph = Wcet_cfg.Supergraph
module Func_cfg = Wcet_cfg.Func_cfg
module Loops = Wcet_cfg.Loops
module Resolver = Wcet_cfg.Resolver
module Program = Pred32_asm.Program

let max_rounds = 4

(* One decode/value-analysis feedback step: run the value analysis on a graph
   with unresolved indirect calls and read off every call-target register
   that the analysis pins to a constant function entry. *)
let learn_targets ~assumes program (graph : Supergraph.t) =
  let loops = Loops.analyze graph in
  let result = Analysis.run ~assumes graph loops in
  List.filter_map
    (fun (nid, site) ->
      let node = graph.Supergraph.nodes.(nid) in
      match node.Supergraph.block.Func_cfg.term with
      | Func_cfg.Term_call_indirect { reg; _ } -> (
        match Aval.singleton (Analysis.reg_at_exit result nid reg) with
        | Some addr
          when List.exists
                 (fun (f : Program.func_info) -> f.Program.entry = addr)
                 program.Program.functions ->
          Some (site, [ addr ])
        | Some _ | None -> None)
      | _ -> None)
    graph.Supergraph.unresolved_calls

let build ?resolver ?(assumes = []) program =
  let base = match resolver with Some r -> r | None -> Resolver.auto program in
  let rec round resolver n =
    let graph = Supergraph.build ~allow_unresolved:(n > 0) ~resolver program in
    if graph.Supergraph.unresolved_calls = [] then graph
    else begin
      let learned = learn_targets ~assumes program graph in
      if learned = [] then
        (* Nothing new: rebuild strictly so the error names the site. *)
        Supergraph.build ~resolver program
      else round (Resolver.with_overrides ~call_targets:learned resolver) (n - 1)
    end
  in
  round base max_rounds

let build_graceful ?resolver ?(assumes = []) program =
  let base = match resolver with Some r -> r | None -> Resolver.auto program in
  let rec round resolver n =
    let graph = Supergraph.build ~degrade:true ~resolver program in
    if graph.Supergraph.unresolved_calls = [] || n = 0 then graph
    else begin
      let learned = learn_targets ~assumes program graph in
      (* Nothing new to learn: keep the degraded graph — remaining
         unresolved calls are analysis holes the analyzer reports. *)
      if learned = [] then graph
      else round (Resolver.with_overrides ~call_targets:learned resolver) (n - 1)
    end
  in
  round base max_rounds
