test/test_util.ml: Alcotest Int64 List QCheck2 QCheck_alcotest Wcet_util
