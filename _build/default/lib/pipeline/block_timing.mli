(** The pipeline analysis of Figure 1: per-basic-block execution-time
    bounds.

    Combines the shared {!Pred32_hw.Timing} cost model with the cache
    classifications: always-hit fetches cost the hit latency, everything
    else the worst case; unresolved data accesses are charged against the
    slowest candidate region. Control-transfer penalties are included
    pessimistically (a conditional branch is costed as taken).

    The lower bound [bcet] takes the optimistic side everywhere; it is used
    for reporting the block-level analysis gap, not for guarantees. *)

type t = {
  wcet : int array;  (** per supergraph node id *)
  bcet : int array;
}

val compute :
  Pred32_hw.Hw_config.t ->
  Wcet_value.Analysis.result ->
  Wcet_cache.Cache_analysis.result ->
  persistence:Wcet_cache.Persistence.t ->
  t

(** [insn_worst_cycles cfg ~fetch_class ~data ~addr insn] — exposed for unit
    tests: worst-case cycles of one instruction. *)
val insn_worst_cycles :
  Pred32_hw.Hw_config.t ->
  fetch_class:Wcet_cache.Cache_analysis.classification ->
  data:(Wcet_cache.Cache_analysis.classification * Pred32_memory.Region.t list) option ->
  addr:int ->
  Pred32_isa.Insn.t ->
  int
