lib/util/pcg.ml: Int64
