test/test_asm_parser.mli:
