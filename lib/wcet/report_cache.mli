(** Persistent content-addressed analysis cache (the tool's warm-rerun
    layer).

    Two granularities over one {!Wcet_util.Store}: whole-program marshaled
    reports (a hit skips every analysis phase and reproduces the cold run
    bit for bit) and per-function converged value/cache fixpoint states
    (on a report miss they seed the fixpoint solvers so only changed
    functions re-transfer — incremental re-analysis). Keys are md5 hashes
    of everything a result depends on: binary image and layout, memory
    map, annotations, hardware configuration, worklist strategy, and — per
    function — its code bytes, the code of its transitive callees, and the
    constant ROM data it may read. Entry envelopes carry a version string;
    corrupt or version-mismatched entries are evicted, reported as
    W0610/W0611 warnings and recomputed, never a crash.

    Configuration is process-global and read-only for worker domains: the
    CLI calls {!set_dir} (or {!disable}) once before any analysis runs.
    The library default is disabled. *)

module Diag := Wcet_diag.Diag

(** {1 Configuration} *)

(** [set_dir d] opens (creating if needed) the store at [d] and enables
    caching; on failure caching stays disabled, a W0612 warning is queued
    and [false] is returned. *)
val set_dir : string -> bool

val disable : unit -> unit
val enabled : unit -> bool
val dir : unit -> string option

(** Version string recorded in entry envelopes (format version plus salt).
    [set_version_salt] exists so tests and forks can force invalidation. *)
val version : unit -> string

val set_version_salt : string -> unit

(** {1 Session accounting} *)

type session = {
  program_hits : int;
  program_misses : int;
  function_hits : int;
  function_misses : int;
  evictions : int;
}

val session_stats : unit -> session
val reset_session : unit -> unit

(** Store-layer warnings (W0610/W0611/W0612) queued since the last drain.
    They are kept out of cached reports to preserve bit-identity; the CLI
    prints them on stderr after the run. *)
val drain_diags : unit -> Diag.t list

(** {1 Whole-program reports}

    Payloads are opaque bytes: the analyzer marshals/unmarshals its report
    type itself (this module cannot name it without a dependency cycle). *)

val find_report :
  hw:Pred32_hw.Hw_config.t ->
  annot:Wcet_annot.Annot.t ->
  strategy:Wcet_util.Fixpoint.strategy ->
  Pred32_asm.Program.t ->
  string option

val save_report :
  hw:Pred32_hw.Hw_config.t ->
  annot:Wcet_annot.Annot.t ->
  strategy:Wcet_util.Fixpoint.strategy ->
  Pred32_asm.Program.t ->
  string ->
  unit

(** The payload [find_report] returned failed to deserialize: evict it and
    reclassify the hit as a miss (W0610). *)
val invalidate_report :
  hw:Pred32_hw.Hw_config.t ->
  annot:Wcet_annot.Annot.t ->
  strategy:Wcet_util.Fixpoint.strategy ->
  Pred32_asm.Program.t ->
  unit

(** {1 Per-function fixpoint seeding} *)

type seeds = {
  value_seed : int -> (Wcet_value.State.t * Wcet_value.State.t) option;
  cache_seed :
    int -> (Wcet_cache.Cache_analysis.Cstate.t * Wcet_cache.Cache_analysis.Cstate.t) option;
  hit_functions : string list;  (** functions restored from the store *)
}

(** [load_seeds ~hw ~annot ~strategy ~assumes graph] reads every matching
    per-function entry and builds node-indexed seed functions for the two
    fixpoints; [None] when caching is off or nothing matched. [assumes]
    must be the resolved assume set the value analysis will run with.
    [value_seed] may be passed to the value analysis directly; [cache_seed]
    must go through {!gate_cache_seed} first. *)
val load_seeds :
  hw:Pred32_hw.Hw_config.t ->
  annot:Wcet_annot.Annot.t ->
  strategy:Wcet_util.Fixpoint.strategy ->
  assumes:(int * Wcet_value.Aval.t) list ->
  Wcet_cfg.Supergraph.t ->
  seeds option

(** [gate_cache_seed seeds value i] is [seeds.cache_seed i] restricted to
    nodes whose value states in the converged result [value] equal the
    ones recorded beside the cache states in the slice. The cache
    transfer function replays the current run's access sets, which the
    per-function key does not cover (caller-supplied dataflow); seeding
    cache states computed under different value states could freeze stale
    must-cache contents and underestimate the bound. *)
val gate_cache_seed :
  seeds ->
  Wcet_value.Analysis.result ->
  int ->
  (Wcet_cache.Cache_analysis.Cstate.t * Wcet_cache.Cache_analysis.Cstate.t) option

(** [save_function_results ~hw ~annot ~strategy ~assumes value cache]
    writes one slice entry per analyzed function (skipping functions whose
    loads may read the text segment). An existing entry under the same key
    is overwritten: the key does not cover caller-supplied dataflow, so it
    may hold states from an older convergence. *)
val save_function_results :
  hw:Pred32_hw.Hw_config.t ->
  annot:Wcet_annot.Annot.t ->
  strategy:Wcet_util.Fixpoint.strategy ->
  assumes:(int * Wcet_value.Aval.t) list ->
  Wcet_value.Analysis.result ->
  Wcet_cache.Cache_analysis.result ->
  unit
