(* Benchmark and table harness: regenerates every table and figure of the
   paper (see DESIGN.md section 4 for the experiment index):

   - T1: the lDivMod iteration histogram (Table 1),
   - F1: the analysis phase breakdown (Figure 1),
   - E1: the MISRA-rule study (Section 4.2, quantified),
   - E2: the design-level-information study (Section 4.3, quantified),

   plus Bechamel micro-benchmarks of the analyzer itself (one Test.make per
   table) so the cost of regenerating each artifact is measured. Run with
   BENCH_FAST=1 to skip the micro-benchmarks; LDIVMOD_SAMPLES=100000000
   reproduces the paper's full 10^8-sample Table 1; PAR_DOMAINS caps the
   domain pool used for the histogram shards and the corpus fan-out.

   T1 runs first at top level so the histogram shards own the whole pool;
   the remaining tables are then fanned out across domains (each worker
   runs its table's corpus entries serially — the pool refuses to nest).
   Every run also writes machine-readable BENCH_results.json — table
   wall-clock, histogram throughput, fixpoint transfer counts (RPO vs FIFO
   worklist) — so the performance trajectory is trackable across PRs. *)

module Harness = Wcet_experiments.Harness
module Parallel = Wcet_util.Parallel
module Clock = Wcet_util.Mono_clock
module Analyzer = Wcet_core.Analyzer

let timed f =
  let t0 = Clock.now () in
  let result = f () in
  (result, Clock.now () -. t0)

(* Render a table into a string so tables can be generated concurrently and
   printed in order. *)
let render table =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  table ppf ();
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let run_bechamel () =
  let open Bechamel in
  let benchmark name f = Test.make ~name (Staged.stage f) in
  let quickstart_program = Minic.Compile.compile Harness.quickstart_source in
  let tests =
    Test.make_grouped ~name:"repro"
      [
        benchmark "T1: ldivmod histogram (100k samples)" (fun () ->
            Softarith.Ldivmod.histogram ~samples:100_000 ~seed:1L ());
        benchmark "F1: full analysis of quickstart" (fun () ->
            Wcet_core.Analyzer.analyze quickstart_program);
        benchmark "E1: one rule entry (13.6, both variants)" (fun () ->
            Harness.run_entry (Option.get (Wcet_corpus.Corpus.find "13.6")));
        benchmark "E2: one tier-two entry (modes, both variants)" (fun () ->
            Harness.run_entry (Option.get (Wcet_corpus.Corpus.find "modes")));
      ]
  in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) () in
  let instances = Toolkit.Instance.[ minor_allocated; monotonic_clock ] in
  let raw = Benchmark.all cfg instances tests in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  Hashtbl.iter
    (fun name result ->
      match Bechamel.Analyze.OLS.estimates result with
      | Some [ est ] -> Format.printf "  %-48s %14.0f ns/run@." name est
      | Some _ | None -> Format.printf "  %-48s (no estimate)@." name)
    results;
  Format.printf "@."

(* Cold-vs-warm wall clock of the persistent analysis cache on the
   quickstart program: the warm run must hit the whole-program entry and
   skip every analysis phase. Uses a throwaway store so the benchmark never
   touches (or is skewed by) a user's _wcet_cache. *)
let cache_comparison () =
  let program = Minic.Compile.compile Harness.quickstart_source in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "wcet_bench_cache.%d" (Unix.getpid ()))
  in
  if not (Wcet_core.Report_cache.set_dir dir) then (0., 0.)
  else begin
    let r_cold, cold = timed (fun () -> Analyzer.analyze program) in
    let r_warm, warm = timed (fun () -> Analyzer.analyze program) in
    Wcet_core.Report_cache.disable ();
    (match Wcet_util.Store.open_store dir with
    | Ok s -> ignore (Wcet_util.Store.clear s)
    | Error _ -> ());
    if r_cold.Analyzer.wcet <> r_warm.Analyzer.wcet then
      failwith "cache benchmark: warm bound differs from cold bound";
    (cold, warm)
  end

(* Transfer counts of the two worklist strategies on the quickstart program:
   the observable win of the RPO priority worklist over chaotic FIFO. *)
let fixpoint_comparison () =
  let program = Minic.Compile.compile Harness.quickstart_source in
  let counts strategy =
    let r = Analyzer.analyze ~strategy program in
    ( r.Analyzer.value.Wcet_value.Analysis.transfers,
      r.Analyzer.cache.Wcet_cache.Cache_analysis.transfers )
  in
  (counts Wcet_util.Fixpoint.Rpo, counts Wcet_util.Fixpoint.Fifo)

(* Whole-program vs summary engine on the quickstart program, cold (no
   report cache): the component schedule drains nodes in the same global
   RPO-priority order as the whole-program worklist, so the transfer totals
   must match exactly — this block is both a benchmark and a standing
   cross-check of that bit-identity argument (DESIGN.md section 5g). *)
let scc_engine_comparison () =
  let program = Minic.Compile.compile Harness.quickstart_source in
  let run engine =
    timed (fun () ->
        let r = Analyzer.analyze ~engine program in
        ( r.Analyzer.wcet,
          r.Analyzer.value.Wcet_value.Analysis.transfers,
          r.Analyzer.cache.Wcet_cache.Cache_analysis.transfers ))
  in
  let (w_bound, w_value, w_cache), w_secs = run Analyzer.Whole_program in
  let (s_bound, s_value, s_cache), s_secs = run Analyzer.Summary in
  if w_bound <> s_bound then failwith "scc benchmark: engines disagree on the WCET bound";
  ((w_value, w_cache, w_secs), (s_value, s_cache, s_secs))

let incremental_source edited =
  (* The edit changes leaf_a's code bytes but not its output interval (t is
     clamped back to 1 on both sides of the edit), so a warm rerun should
     re-transfer leaf_a's components only — every downstream slice still
     sees its recorded input. *)
  Printf.sprintf
    "int leaf_a(int x) { int t; t = %d; if (t > 0) { t = 1; } return x + t; }\n\
     int leaf_b(int x) { return x * 2; }\n\
     int mid_a(int x) { return leaf_a(x); }\n\
     int mid_b(int x) { return leaf_b(x); }\n\
     int main() { return mid_a(3) + mid_b(4); }\n"
    (if edited then 2 else 1)

(* One-function edit under a warm per-function cache: cold-analyze the base
   program, then analyze a variant whose only change is leaf_a's constant.
   The summary engine reloads slices for the untouched functions and
   re-transfers only leaf_a's components plus the nodes downstream of its
   changed output — the warm transfer count is the O(changed) headline. *)
let incremental_comparison () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "wcet_bench_scc.%d" (Unix.getpid ()))
  in
  if not (Wcet_core.Report_cache.set_dir dir) then ((0, 0), (0, 0))
  else begin
    let transfers r =
      ( r.Analyzer.value.Wcet_value.Analysis.transfers,
        r.Analyzer.cache.Wcet_cache.Cache_analysis.transfers )
    in
    let cold =
      transfers (Analyzer.analyze (Minic.Compile.compile (incremental_source false)))
    in
    let warm =
      transfers (Analyzer.analyze (Minic.Compile.compile (incremental_source true)))
    in
    Wcet_core.Report_cache.disable ();
    (match Wcet_util.Store.open_store dir with
    | Ok s -> ignore (Wcet_util.Store.clear s)
    | Error _ -> ());
    (cold, warm)
  end

module Json = Wcet_diag.Json
module Ledger = Wcet_obs.Ledger

(* Provenance stamps (shared with the bound ledger), so BENCH_results.json
   files from different checkouts compare meaningfully. *)
let git_commit = Ledger.git_commit
let iso_date = Ledger.iso_date

(* One bound-drift snapshot per benchmarked program, appended to the NDJSON
   ledger so successive bench runs form a time series readable by
   [wcet_tool ledger report] and gated by [wcet_tool ledger diff]. *)
let ledger_snapshot ~program source =
  let report = Analyzer.analyze (Minic.Compile.compile source) in
  {
    Ledger.program;
    digest = Digest.to_hex (Digest.string source);
    commit = Ledger.git_commit ();
    date = Ledger.iso_date ();
    verdict =
      (match report.Analyzer.verdict with
      | Analyzer.Complete -> "complete"
      | Analyzer.Partial -> "partial");
    bound = Some report.Analyzer.wcet;
    observed = None;
    metrics = Wcet_core.Attribution.precision_counts report;
  }

let write_ledger ~path =
  let entries =
    [
      ledger_snapshot ~program:"bench/quickstart" Wcet_experiments.Harness.quickstart_source;
      ledger_snapshot ~program:"bench/diamond" (incremental_source false);
    ]
  in
  match Ledger.append ~path entries with
  | Ok () -> Format.printf "  bound snapshots appended to %s@.@." path
  | Error msg -> Format.eprintf "W0802: bench ledger not written: %s@." msg

(* The E4 rows rendered as the machine-readable [value_domain] block:
   per-entry interval-vs-auto bounds plus the two precision counters the
   CI gate watches (non-exact access addresses, unclassified cache
   accesses). *)
let verdict_json = function
  | Harness.Bound b -> Json.Obj [ ("verdict", Json.String "complete"); ("bound", Json.Int b) ]
  | Harness.Partial (b, _) ->
    Json.Obj [ ("verdict", Json.String "partial"); ("bound", Json.Int b) ]
  | Harness.Fails _ -> Json.Obj [ ("verdict", Json.String "failed"); ("bound", Json.Null) ]

let value_domain_json e4 =
  let pair name (i, a) = (name, Json.Obj [ ("interval", Json.Int i); ("auto", Json.Int a) ]) in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 e4 in
  Json.Obj
    [
      ("corpus", Json.String "conforming scenarios, assisted annotations");
      ( "entries",
        Json.List
          (List.map
             (fun (r : Harness.e4_row) ->
               Json.Obj
                 [
                   ("entry", Json.String r.Harness.e4_entry);
                   ("interval", verdict_json r.Harness.e4_interval);
                   ("auto", verdict_json r.Harness.e4_auto);
                   ("interval_seconds", Json.Float r.Harness.e4_interval_secs);
                   ("auto_seconds", Json.Float r.Harness.e4_auto_secs);
                   ("escalated_functions", Json.Int r.Harness.e4_escalated);
                   ("octagon_transfers", Json.Int r.Harness.e4_transfers);
                   ("discharged_loops", Json.Int r.Harness.e4_loops);
                   ("tightened_accesses", Json.Int r.Harness.e4_accesses);
                   pair "nonexact_value_accesses" r.Harness.e4_value_nonexact;
                   pair "not_classified_cache_accesses" r.Harness.e4_cache_nc;
                 ])
             e4) );
      ("escalated_functions", Json.Int (sum (fun r -> r.Harness.e4_escalated)));
      ("octagon_transfers", Json.Int (sum (fun r -> r.Harness.e4_transfers)));
      ("discharged_loops", Json.Int (sum (fun r -> r.Harness.e4_loops)));
      ("tightened_accesses", Json.Int (sum (fun r -> r.Harness.e4_accesses)));
      pair "nonexact_value_accesses"
        ( sum (fun r -> fst r.Harness.e4_value_nonexact),
          sum (fun r -> snd r.Harness.e4_value_nonexact) );
      pair "not_classified_cache_accesses"
        (sum (fun r -> fst r.Harness.e4_cache_nc), sum (fun r -> snd r.Harness.e4_cache_nc));
    ]

(* The E5 rows rendered as the machine-readable [path_portfolio] block:
   per-entry per-backend bounds and wall times plus the winner tallies the
   CI gate watches (the portfolio bound must never exceed IPET's). *)
let path_portfolio_json e5 =
  let backend_json (b : Wcet_core.Analyzer.backend_run) =
    Json.Obj
      [
        ("name", Json.String b.Wcet_core.Analyzer.br_name);
        ( "bound",
          match b.Wcet_core.Analyzer.br_bound with Some x -> Json.Int x | None -> Json.Null );
        ( "error",
          match b.Wcet_core.Analyzer.br_error with
          | Some (code, _) -> Json.String code
          | None -> Json.Null );
        ("wall_ms", Json.Int b.Wcet_core.Analyzer.br_wall_ms);
        ("winner", Json.Bool b.Wcet_core.Analyzer.br_winner);
      ]
  in
  let wins name =
    List.length (List.filter (fun (r : Harness.e5_row) -> r.Harness.e5_winner = name) e5)
  in
  Json.Obj
    [
      ("corpus", Json.String "conforming scenarios, assisted annotations");
      ( "entries",
        Json.List
          (List.map
             (fun (r : Harness.e5_row) ->
               Json.Obj
                 [
                   ("entry", Json.String r.Harness.e5_entry);
                   ("portfolio", verdict_json r.Harness.e5_verdict);
                   ("winner", Json.String r.Harness.e5_winner);
                   ("backends", Json.List (List.map backend_json r.Harness.e5_backends));
                 ])
             e5) );
      ( "winners",
        Json.Obj
          [
            ("ipet", Json.Int (wins "ipet"));
            ("csolve", Json.Int (wins "csolve"));
            ("mc", Json.Int (wins "mc"));
          ] );
    ]

let write_json ~path ~domains ~samples ~tables ~samples_per_sec
    ~rpo:(rpo_value, rpo_cache) ~fifo:(fifo_value, fifo_cache)
    ~store:(store_cold, store_warm)
    ~scc:((wp_value, wp_cache, wp_secs), (sm_value, sm_cache, sm_secs))
    ~incr:(incr_cold, incr_warm) ~e4 ~e5 =
  let strategy v c =
    Json.Obj [ ("value", Json.Int v); ("cache", Json.Int c); ("total", Json.Int (v + c)) ]
  in
  let json =
    Json.Obj
      [
        ("commit", Json.String (git_commit ()));
        ("date", Json.String (iso_date ()));
        ("domains", Json.Int domains);
        ("ldivmod_samples", Json.Int samples);
        ("histogram_samples_per_sec", Json.Float samples_per_sec);
        ( "tables",
          Json.List
            (List.map
               (fun (name, seconds) ->
                 Json.Obj [ ("name", Json.String name); ("seconds", Json.Float seconds) ])
               tables) );
        ( "fixpoint_transfers",
          Json.Obj
            [
              ("program", Json.String "quickstart");
              ("rpo", strategy rpo_value rpo_cache);
              ("fifo", strategy fifo_value fifo_cache);
            ] );
        ( "scc_summary",
          Json.Obj
            [
              ("program", Json.String "quickstart");
              ( "whole_program",
                Json.Obj
                  [
                    ("value", Json.Int wp_value);
                    ("cache", Json.Int wp_cache);
                    ("total", Json.Int (wp_value + wp_cache));
                    ("seconds", Json.Float wp_secs);
                  ] );
              ( "summary",
                Json.Obj
                  [
                    ("value", Json.Int sm_value);
                    ("cache", Json.Int sm_cache);
                    ("total", Json.Int (sm_value + sm_cache));
                    ("seconds", Json.Float sm_secs);
                  ] );
              ( "incremental_edit",
                Json.Obj
                  [
                    ("program", Json.String "five-function diamond, one leaf edited");
                    ("cold", (fun (v, c) -> strategy v c) incr_cold);
                    ("warm", (fun (v, c) -> strategy v c) incr_warm);
                  ] );
            ] );
        ( "analysis_cache",
          Json.Obj
            [
              ("program", Json.String "quickstart");
              ("cold_seconds", Json.Float store_cold);
              ("warm_seconds", Json.Float store_warm);
              ( "speedup",
                if store_warm > 0. then Json.Float (store_cold /. store_warm) else Json.Null );
            ] );
        ("value_domain", value_domain_json e4);
        ("path_portfolio", path_portfolio_json e5);
        (* Snapshot of every observability metric populated by the tables
           above (analyzer counters, cache classifications, …). *)
        ("metrics", Wcet_obs.Metrics.to_json ());
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc

let () =
  let domains = Parallel.default_domains () in
  let samples =
    match Harness.samples_from_env () with
    | Ok s -> s
    | Error d ->
      Format.eprintf "%a@." Wcet_diag.Diag.pp d;
      exit (Wcet_diag.Diag.exit_for d)
  in
  (* T1 first, alone at top level: the histogram shards get all domains.
     The observability switch is still off here, so the sampling loop is
     measured at its uninstrumented speed — enabling tracing must never
     skew the headline throughput number. *)
  let t1_out, t1_seconds = timed (fun () -> render (Harness.table_t1 ~samples)) in
  print_string t1_out;
  print_newline ();
  (* Everything after the timed histogram runs observed, so the JSON report
     below can snapshot the metric registry. The small re-run populates the
     ldivmod_iterations histogram metric (T1 itself ran unobserved). *)
  Wcet_obs.Obs.enable ();
  ignore (Softarith.Ldivmod.histogram ~samples:100_000 ~seed:1L ());
  (* The remaining tables fan out across the pool; each is rendered to its
     own buffer and printed in the fixed order below. *)
  let tables =
    [|
      ("F1", fun ppf () -> Harness.table_f1 ppf ());
      ("E1", fun ppf () -> Harness.table_rules ppf ());
      ("E2", fun ppf () -> Harness.table_tier_two ppf ());
      ("A1/A2", fun ppf () -> Harness.table_ablations ppf ());
    |]
  in
  let rendered =
    Parallel.map (Array.length tables) (fun i ->
        let name, table = tables.(i) in
        let out, seconds = timed (fun () -> render table) in
        (name, out, seconds))
  in
  Array.iter
    (fun (_, out, _) ->
      print_string out;
      print_newline ())
    rendered;
  (* E4 runs the corpus twice (interval, then auto) so its rows feed both
     the printed table and the value_domain JSON block without a re-run;
     the entries themselves fan out across the pool. *)
  let e4, e4_seconds = timed (fun () -> Harness.e4_rows ()) in
  print_string (render (fun ppf () -> Harness.pp_e4 ppf e4));
  print_newline ();
  (* E5 runs the corpus once under the portfolio so its rows feed both the
     printed table and the path_portfolio JSON block without a re-run. *)
  let e5, e5_seconds = timed (fun () -> Harness.e5_rows ()) in
  print_string (render (fun ppf () -> Harness.pp_e5 ppf e5));
  print_newline ();
  let (rpo, fifo) = fixpoint_comparison () in
  let (rpo_value, rpo_cache) = rpo and (fifo_value, fifo_cache) = fifo in
  Format.printf
    "== fixpoint worklist (quickstart program) ==@.  rpo  transfers: value %d + cache %d = %d@.  \
     fifo transfers: value %d + cache %d = %d@.@."
    rpo_value rpo_cache (rpo_value + rpo_cache) fifo_value fifo_cache (fifo_value + fifo_cache);
  let ((wp_value, wp_cache, wp_secs), (sm_value, sm_cache, sm_secs)) as scc =
    scc_engine_comparison ()
  in
  Format.printf
    "== scc summary engine (quickstart program, cold) ==@.  whole-program: value %d + cache %d = \
     %d transfers   %.4f s@.  summary:       value %d + cache %d = %d transfers   %.4f s@.@."
    wp_value wp_cache (wp_value + wp_cache) wp_secs sm_value sm_cache (sm_value + sm_cache)
    sm_secs;
  let (((incr_cold_v, incr_cold_c), (incr_warm_v, incr_warm_c)) as incr) =
    incremental_comparison ()
  in
  Format.printf
    "== incremental one-function edit (warm per-function cache) ==@.  cold: value %d + cache %d = \
     %d transfers@.  warm: value %d + cache %d = %d transfers@.@."
    incr_cold_v incr_cold_c (incr_cold_v + incr_cold_c) incr_warm_v incr_warm_c
    (incr_warm_v + incr_warm_c);
  let (store_cold, store_warm) = cache_comparison () in
  Format.printf
    "== analysis cache (quickstart program) ==@.  cold: %.4f s   warm: %.4f s   speedup: %.1fx@.@."
    store_cold store_warm
    (if store_warm > 0. then store_cold /. store_warm else 0.);
  let samples_per_sec = float_of_int samples /. t1_seconds in
  let table_times =
    ("T1", t1_seconds)
    :: (Array.to_list rendered |> List.map (fun (name, _, seconds) -> (name, seconds)))
    @ [ ("E4", e4_seconds); ("E5", e5_seconds) ]
  in
  write_json ~path:"BENCH_results.json" ~domains ~samples ~tables:table_times ~samples_per_sec
    ~rpo ~fifo ~store:(store_cold, store_warm) ~scc ~incr ~e4 ~e5;
  Format.printf "== timings (%d domains) ==@." domains;
  List.iter
    (fun (name, seconds) -> Format.printf "  %-6s %8.3f s@." name seconds)
    table_times;
  Format.printf "  T1 throughput: %.2e samples/s@." samples_per_sec;
  Format.printf "  (machine-readable copy in BENCH_results.json)@.";
  write_ledger ~path:"BENCH_ledger.ndjson";
  if Sys.getenv_opt "BENCH_FAST" = None then begin
    Format.printf "== micro-benchmarks (bechamel) ==@.";
    run_bechamel ()
  end
