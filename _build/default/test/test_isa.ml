(* Tests for the PRED32 ISA: word arithmetic and encode/decode round trips. *)

module Word = Pred32_isa.Word
module Insn = Pred32_isa.Insn
module Reg = Pred32_isa.Reg
module Encode = Pred32_isa.Encode

let test_word_wrap () =
  Alcotest.(check int) "add wraps" 0 (Word.add 0xFFFFFFFF 1);
  Alcotest.(check int) "sub wraps" 0xFFFFFFFF (Word.sub 0 1);
  Alcotest.(check int) "mul wraps" 0xFFFFFFFE (Word.mul 0xFFFFFFFF 2);
  Alcotest.(check int) "to_signed -1" (-1) (Word.to_signed 0xFFFFFFFF);
  Alcotest.(check int) "of_signed -1" 0xFFFFFFFF (Word.of_signed (-1))

let test_word_div () =
  Alcotest.(check int) "divu" 3 (Word.divu 10 3);
  Alcotest.(check int) "remu" 1 (Word.remu 10 3);
  Alcotest.(check int) "div by zero" 0xFFFFFFFF (Word.divu 5 0);
  Alcotest.(check int) "rem by zero" 5 (Word.remu 5 0)

let test_word_shift () =
  Alcotest.(check int) "shl masks amount" (Word.shl 1 1) (Word.shl 1 33);
  Alcotest.(check int) "sra sign" 0xFFFFFFFF (Word.sra 0x80000000 31);
  Alcotest.(check int) "shr zero fill" 1 (Word.shr 0x80000000 31)

let test_word_cmp () =
  Alcotest.(check int) "slt signed" 1 (Word.slt 0xFFFFFFFF 0);
  Alcotest.(check int) "sltu unsigned" 0 (Word.sltu 0xFFFFFFFF 0);
  Alcotest.(check int) "sext16 neg" (-1) (Word.sext16 0xFFFF);
  Alcotest.(check int) "sext16 pos" 0x7FFF (Word.sext16 0x7FFF)

let insn_testable = Alcotest.testable Insn.pp Insn.equal

let sample_insns =
  let r = Reg.of_int in
  [
    Insn.Nop;
    Insn.Halt;
    Insn.Alu (Insn.Add, r 1, r 2, r 3);
    Insn.Alu (Insn.Sltu, r 15, r 0, r 7);
    Insn.Alui (Insn.Add, r 4, r 5, -32768);
    Insn.Alui (Insn.Slt, r 4, r 5, 32767);
    Insn.Alui (Insn.Or, r 4, r 4, 0xFFFF);
    Insn.Alui (Insn.And, r 2, r 2, 0);
    Insn.Lui (r 9, 0xABCD);
    Insn.Load (r 1, Reg.sp, -4);
    Insn.Store (r 1, Reg.fp, 124);
    Insn.Branch (Insn.Bne, r 1, r 0, -100);
    Insn.Jump 0x123456;
    Insn.Call 1;
    Insn.Jump_reg Reg.lr;
    Insn.Call_reg (r 6);
    Insn.Cmovnz (r 1, r 2, r 3);
  ]

let test_roundtrip_samples () =
  List.iter
    (fun i -> Alcotest.check insn_testable "roundtrip" i (Encode.decode (Encode.encode i)))
    sample_insns

let test_decode_total () =
  (* Every word decodes to something; zero must be illegal. *)
  (match Encode.decode 0l with
  | Insn.Illegal _ -> ()
  | i -> Alcotest.failf "word 0 decoded to %a" Insn.pp i);
  match Encode.decode 0xFFFFFFFFl with
  | Insn.Illegal _ -> ()
  | _ -> ()

let test_out_of_range () =
  Alcotest.check_raises "imm too big"
    (Encode.Immediate_out_of_range (Insn.Alui (Insn.Add, Reg.rv, Reg.rv, 40000)))
    (fun () -> ignore (Encode.encode (Insn.Alui (Insn.Add, Reg.rv, Reg.rv, 40000))));
  Alcotest.check_raises "negative logical imm"
    (Encode.Immediate_out_of_range (Insn.Alui (Insn.Or, Reg.rv, Reg.rv, -1)))
    (fun () -> ignore (Encode.encode (Insn.Alui (Insn.Or, Reg.rv, Reg.rv, -1))))

let gen_insn =
  let open QCheck2.Gen in
  let reg = map Reg.of_int (int_range 0 15) in
  let alu_op =
    oneofl
      [
        Insn.Add; Insn.Sub; Insn.Mul; Insn.Divu; Insn.Remu; Insn.And; Insn.Or; Insn.Xor;
        Insn.Shl; Insn.Shr; Insn.Sra; Insn.Slt; Insn.Sltu;
      ]
  in
  let cond = oneofl [ Insn.Beq; Insn.Bne; Insn.Blt; Insn.Bge; Insn.Bltu; Insn.Bgeu ] in
  let imm_signed = int_range (-32768) 32767 in
  let imm_unsigned = int_range 0 0xFFFF in
  oneof
    [
      return Insn.Nop;
      return Insn.Halt;
      map3 (fun op (a, b) c -> Insn.Alu (op, a, b, c)) alu_op (pair reg reg) reg;
      map3
        (fun op (a, b) simm ->
          match op with
          | Insn.And | Insn.Or | Insn.Xor -> Insn.Alui (op, a, b, abs simm)
          | _ -> Insn.Alui (op, a, b, simm))
        alu_op (pair reg reg) imm_signed;
      map2 (fun r i -> Insn.Lui (r, i)) reg imm_unsigned;
      map3 (fun a b i -> Insn.Load (a, b, i)) reg reg imm_signed;
      map3 (fun a b i -> Insn.Store (a, b, i)) reg reg imm_signed;
      map3 (fun c (a, b) off -> Insn.Branch (c, a, b, off)) cond (pair reg reg) imm_signed;
      map (fun w -> Insn.Jump w) (int_range 0 ((1 lsl 26) - 1));
      map (fun w -> Insn.Call w) (int_range 0 ((1 lsl 26) - 1));
      map (fun r -> Insn.Jump_reg r) reg;
      map (fun r -> Insn.Call_reg r) reg;
      map3 (fun a b c -> Insn.Cmovnz (a, b, c)) reg reg reg;
    ]

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"encode/decode roundtrip" ~count:2000 gen_insn (fun i ->
           Insn.equal i (Encode.decode (Encode.encode i))));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"decode total" ~count:2000
         (QCheck2.Gen.map Int32.of_int QCheck2.Gen.int)
         (fun w ->
           match Encode.decode w with
           | _ -> true));
  ]

let test_control_flow_classes () =
  Alcotest.(check bool) "branch terminates block" true
    (Insn.is_block_terminator (Insn.Branch (Insn.Beq, Reg.rv, Reg.zero, 3)));
  Alcotest.(check bool) "alu does not" false
    (Insn.is_block_terminator (Insn.Alu (Insn.Add, Reg.rv, Reg.rv, Reg.rv)));
  (match Insn.control_flow (Insn.Call 17) with
  | Insn.Call_to 17 -> ()
  | _ -> Alcotest.fail "call class");
  match Insn.control_flow (Insn.Call_reg Reg.rv) with
  | Insn.Indirect_call -> ()
  | _ -> Alcotest.fail "indirect call class"

let test_defs_uses () =
  let r = Reg.of_int in
  Alcotest.(check (list string)) "defs of add" [ "r1" ]
    (List.map Reg.name (Insn.defs (Insn.Alu (Insn.Add, r 1, r 2, r 3))));
  Alcotest.(check (list string)) "r0 writes discarded" []
    (List.map Reg.name (Insn.defs (Insn.Alu (Insn.Add, r 0, r 2, r 3))));
  Alcotest.(check (list string)) "call defines lr" [ "lr" ]
    (List.map Reg.name (Insn.defs (Insn.Call 0)));
  Alcotest.(check (list string)) "store uses base+value" [ "fp"; "r1" ]
    (List.map Reg.name (Insn.uses (Insn.Store (r 1, Reg.fp, 0))))

let () =
  Alcotest.run "isa"
    [
      ( "word",
        [
          Alcotest.test_case "wrap" `Quick test_word_wrap;
          Alcotest.test_case "div" `Quick test_word_div;
          Alcotest.test_case "shift" `Quick test_word_shift;
          Alcotest.test_case "compare/sext" `Quick test_word_cmp;
        ] );
      ( "encode",
        [
          Alcotest.test_case "roundtrip samples" `Quick test_roundtrip_samples;
          Alcotest.test_case "decode total" `Quick test_decode_total;
          Alcotest.test_case "immediate range" `Quick test_out_of_range;
        ]
        @ qcheck_tests );
      ( "classify",
        [
          Alcotest.test_case "control flow" `Quick test_control_flow_classes;
          Alcotest.test_case "defs/uses" `Quick test_defs_uses;
        ] );
    ]
