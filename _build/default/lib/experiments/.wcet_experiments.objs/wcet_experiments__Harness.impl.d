lib/experiments/harness.ml: Array Cache_config Format Hw_config List Minic Misra Pred32_hw Pred32_sim Printf Softarith String Sys Wcet_annot Wcet_cfg Wcet_core Wcet_corpus
