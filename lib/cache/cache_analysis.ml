module Insn = Pred32_isa.Insn
module Region = Pred32_memory.Region
module Memory_map = Pred32_memory.Memory_map
module Cache_config = Pred32_hw.Cache_config
module Hw_config = Pred32_hw.Hw_config
module Supergraph = Wcet_cfg.Supergraph
module Func_cfg = Wcet_cfg.Func_cfg
module Analysis = Wcet_value.Analysis
module Aval = Wcet_value.Aval

module Metrics = Wcet_obs.Metrics

let m_transfers =
  Metrics.counter ~labels:[ ("analysis", "cache") ] ~name:"fixpoint_transfers"
    ~help:"Transfer-function applications until the cache fixpoint" ()

let m_widenings =
  Metrics.counter ~labels:[ ("analysis", "cache") ] ~name:"fixpoint_widenings"
    ~help:"State merges that used widening in the cache analysis" ()

let m_joins =
  Metrics.counter ~labels:[ ("analysis", "cache") ] ~name:"fixpoint_joins"
    ~help:"State merges that used join in the cache analysis" ()

let m_worklist_peak =
  Metrics.gauge ~labels:[ ("analysis", "cache") ] ~name:"fixpoint_worklist_peak"
    ~help:"Peak worklist occupancy of the cache fixpoint" ()

let m_fetch_class cls =
  Metrics.counter ~labels:[ ("class", cls) ] ~name:"cache_fetch_class"
    ~help:("Instruction fetches classified " ^ cls) ()

let m_fetch_ah = m_fetch_class "always_hit"
let m_fetch_am = m_fetch_class "always_miss"
let m_fetch_nc = m_fetch_class "not_classified"
let m_fetch_bp = m_fetch_class "bypass"

let m_data_class cls =
  Metrics.counter ~labels:[ ("class", cls) ] ~name:"cache_data_class"
    ~help:("Data accesses classified " ^ cls) ()

let m_data_ah = m_data_class "always_hit"
let m_data_am = m_data_class "always_miss"
let m_data_nc = m_data_class "not_classified"
let m_data_bp = m_data_class "bypass"

type classification = Always_hit | Always_miss | Not_classified | Bypass

type data_access = {
  insn_index : int;
  is_store : bool;
  kind : classification;
  regions : Region.t list;
}

(* Abstract state: a pair of optional caches. *)
module Cstate = struct
  type t = { ic : Acache.t option; dc : Acache.t option }

  let map2 f a b =
    match (a, b) with
    | Some x, Some y -> Some (f x y)
    | None, None -> None
    | Some _, None | None, Some _ -> assert false

  let leq a b =
    let le x y = match (x, y) with
      | Some x, Some y -> Acache.leq x y
      | None, None -> true
      | Some _, None | None, Some _ -> assert false
    in
    le a.ic b.ic && le a.dc b.dc

  let join a b = { ic = map2 Acache.join a.ic b.ic; dc = map2 Acache.join a.dc b.dc }
  let widen = join
end

type result = {
  fetch : classification array array;
  data : data_access list array;
  node_in : Cstate.t option array;
  node_out : Cstate.t option array;
  transfers : int;
}

module FP = Wcet_util.Fixpoint.Make (Cstate)

(* Candidate memory regions of a data access. *)
let candidate_regions map av hint =
  let all_data () =
    match hint with
    | Some regions -> regions
    | None ->
      List.filter (fun (r : Region.t) -> r.Region.kind <> Region.Rom) (Memory_map.regions map)
  in
  match Aval.range av with
  | None -> all_data ()
  | Some (lo, hi) ->
    let overlapping =
      List.filter
        (fun (r : Region.t) -> r.Region.base <= hi && lo < Region.limit r)
        (Memory_map.regions map)
    in
    (match overlapping with
    | [] -> all_data ()
    | regions -> (
      match hint with
      | Some hinted when List.length regions > 1 ->
        (* the annotation narrows a multi-region candidate set *)
        let inter = List.filter (fun r -> List.memq r hinted || List.mem r hinted) regions in
        if inter = [] then hinted else inter
      | _ -> regions))

(* Lines an access may touch, or None when too imprecise to enumerate. *)
let candidate_lines dcache_cfg av =
  match Aval.range av with
  | None -> None
  | Some (lo, hi) ->
    if hi - lo > 8 * dcache_cfg.Cache_config.line_bytes then None
    else Some (Cache_config.lines_of_range dcache_cfg ~addr:lo ~size:(hi - lo + 1))

type access_info = {
  classification : classification;
  regions : Region.t list;
  update : Acache.t option -> Acache.t option;
}

(* Analyze one data access against the current data-cache state. *)
let data_access_info (cfg : Hw_config.t) hint av ~is_store dc =
  let regions = candidate_regions cfg.Hw_config.map av hint in
  let all_uncacheable = List.for_all (fun (r : Region.t) -> not r.Region.cacheable) regions in
  if is_store then
    (* write-around: no cache effect *)
    { classification = Bypass; regions; update = Fun.id }
  else
    match (dc, cfg.Hw_config.dcache) with
    | None, _ | _, None -> { classification = Bypass; regions; update = Fun.id }
    | Some dcache, Some dcache_cfg ->
      if all_uncacheable then { classification = Bypass; regions; update = Fun.id }
      else (
        match candidate_lines dcache_cfg av with
        | Some [ line ] ->
          let classification =
            if Acache.must_contains dcache line then Always_hit
            else if Acache.may_excludes dcache line then Always_miss
            else Not_classified
          in
          { classification; regions; update = Option.map (fun c -> Acache.access c line) }
        | Some lines ->
          (* one of a few lines: join of the possible outcomes *)
          let update =
            Option.map (fun c ->
                match List.map (Acache.access c) lines with
                | [] -> c
                | first :: rest -> List.fold_left Acache.join first rest)
          in
          { classification = Not_classified; regions; update }
        | None ->
          (* imprecise access: the paper's cache-damage case *)
          { classification = Not_classified; regions; update = Option.map Acache.access_unknown })

let fetch_info (cfg : Hw_config.t) map addr ic =
  match (ic, cfg.Hw_config.icache) with
  | None, _ | _, None -> (Bypass, Fun.id)
  | Some icache, Some icache_cfg -> (
    match Memory_map.find map addr with
    | Some r when r.Region.cacheable ->
      let line = Cache_config.line_of_addr icache_cfg addr in
      let classification =
        if Acache.must_contains icache line then Always_hit
        else if Acache.may_excludes icache line then Always_miss
        else Not_classified
      in
      (classification, Option.map (fun c -> Acache.access c line))
    | Some _ | None -> (Bypass, Fun.id))

(* Per-node summary rows for the component-scheduled cache analysis (the
   access-set transformer analogue of Wcet_value.Summary): recorded external
   input and converged states. Validity additionally requires the value
   states the access sets were derived from to match — the caller gates
   rows on that (Report_cache.cache_slice). *)
type summary_row = {
  sc_input : Cstate.t option;
  sc_states : (Cstate.t * Cstate.t) option;
}

type summary_slice = int -> summary_row option

type scheduled_info = {
  sched_ext_input : Cstate.t option array;
  sched_components : int;
  sched_computed : int;
  sched_applied : int;
}

let equal_cstate a b = Cstate.leq a b && Cstate.leq b a

let equal_cinput a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> equal_cstate a b
  | None, Some _ | Some _, None -> false

let m_summary_computes =
  Metrics.counter ~labels:[ ("analysis", "cache") ] ~name:"summary_computes"
    ~help:"Components solved by iteration in the scheduled cache analysis" ()

let m_summary_hits =
  Metrics.counter ~labels:[ ("analysis", "cache") ] ~name:"summary_hits"
    ~help:"Components applied from recorded summary rows in the cache analysis" ()

let m_scc_transfers =
  Metrics.histogram ~labels:[ ("analysis", "cache") ] ~name:"summary_scc_transfers"
    ~help:"Transfer count per solved component of the scheduled cache analysis"
    ~buckets:[| 0; 1; 2; 4; 8; 16; 32; 64; 128; 256 |] ()

(* Per-node transfer, optionally recording classifications. *)
let make_transfer (cfg : Hw_config.t) (value : Analysis.result) ~region_hints =
  let nodes = value.Analysis.graph.Supergraph.nodes in
  let transfer record i (st : Cstate.t) =
    let node = nodes.(i) in
    let hint = region_hints node.Supergraph.func in
    let accesses = value.Analysis.accesses.(i) in
    let st = ref st in
    Array.iteri
      (fun idx (addr, insn) ->
        let fetch_class, ic_update = fetch_info cfg cfg.Hw_config.map addr !st.Cstate.ic in
        (match record with
        | Some (fetch_rec, _) -> fetch_rec.(idx) <- fetch_class
        | None -> ());
        st := { !st with Cstate.ic = ic_update !st.Cstate.ic };
        match insn with
        | Insn.Load _ | Insn.Store _ -> (
          let is_store = Insn.writes_memory insn in
          let access =
            List.find_opt (fun (a : Analysis.access) -> a.Analysis.insn_index = idx) accesses
          in
          match access with
          | None -> ()
          | Some a ->
            let info = data_access_info cfg hint a.Analysis.addr ~is_store !st.Cstate.dc in
            (match record with
            | Some (_, data_rec) ->
              data_rec :=
                { insn_index = idx; is_store; kind = info.classification; regions = info.regions }
                :: !data_rec
            | None -> ());
            st := { !st with Cstate.dc = info.update !st.Cstate.dc })
        | _ -> ())
      node.Supergraph.block.Func_cfg.insns;
    !st
  in
  transfer

(* Shared tail of [run] / [run_scheduled]: a recording pass over the
   converged states to classify every fetch and data access, plus the
   fixpoint and classification metrics. *)
let finish ~transfer ~nodes ~n (solution : FP.result) =
  let fetch =
    Array.map
      (fun node -> Array.make (Array.length node.Supergraph.block.Func_cfg.insns) Not_classified)
      nodes
  in
  let data = Array.make n [] in
  Array.iteri
    (fun i _ ->
      match solution.FP.in_state i with
      | None -> ()
      | Some st ->
        let data_rec = ref [] in
        ignore (transfer (Some (fetch.(i), data_rec)) i st);
        data.(i) <- List.rev !data_rec)
    nodes;
  Metrics.incr m_transfers solution.FP.transfers;
  Metrics.incr m_widenings solution.FP.widenings;
  Metrics.incr m_joins solution.FP.joins;
  Metrics.set_max m_worklist_peak solution.FP.max_pending;
  if Wcet_obs.Obs.on () then begin
    let fetch_metric = function
      | Always_hit -> m_fetch_ah
      | Always_miss -> m_fetch_am
      | Not_classified -> m_fetch_nc
      | Bypass -> m_fetch_bp
    in
    let data_metric = function
      | Always_hit -> m_data_ah
      | Always_miss -> m_data_am
      | Not_classified -> m_data_nc
      | Bypass -> m_data_bp
    in
    Array.iter (Array.iter (fun c -> Metrics.incr (fetch_metric c) 1)) fetch;
    Array.iter (List.iter (fun a -> Metrics.incr (data_metric a.kind) 1)) data
  end;
  {
    fetch;
    data;
    node_in = Array.init n solution.FP.in_state;
    node_out = Array.init n solution.FP.out_state;
    transfers = solution.FP.transfers;
  }

let run ?(strategy = Wcet_util.Fixpoint.Rpo) ?seeds ?cancel (cfg : Hw_config.t)
    (value : Analysis.result) ~region_hints =
  let graph = value.Analysis.graph in
  let nodes = graph.Supergraph.nodes in
  let n = Array.length nodes in
  let initial =
    {
      Cstate.ic = Option.map Acache.empty cfg.Hw_config.icache;
      dc = Option.map Acache.empty cfg.Hw_config.dcache;
    }
  in
  let transfer = make_transfer cfg value ~region_hints in
  let problem =
    {
      FP.num_nodes = n;
      entries = [ (graph.Supergraph.entry, initial) ];
      succs =
        (fun i ->
          if Analysis.reachable value i then
            List.filter_map
              (fun (_, t) -> if Analysis.reachable value t then Some t else None)
              nodes.(i).Supergraph.succs
          else []);
      transfer = (fun i st -> transfer None i st);
      widening_points = (fun _ -> false);
      widening_delay = max_int;
    }
  in
  let solution = FP.solve ~strategy ?seeds ?cancel problem in
  finish ~transfer ~nodes ~n solution

(* [run_scheduled] solves the same reachability-filtered problem one
   component at a time (its condensation can be finer than the value
   analysis': infeasible edges drop out of the plan). Rows are applied when
   every member is covered and the delivered external cache state equals
   the recorded one; the caller must additionally have gated rows on the
   value states their access sets were derived from. *)
let run_scheduled ?slice ?cancel ?domains (cfg : Hw_config.t) (value : Analysis.result)
    ~region_hints =
  let graph = value.Analysis.graph in
  let nodes = graph.Supergraph.nodes in
  let n = Array.length nodes in
  let initial =
    {
      Cstate.ic = Option.map Acache.empty cfg.Hw_config.icache;
      dc = Option.map Acache.empty cfg.Hw_config.dcache;
    }
  in
  let transfer = make_transfer cfg value ~region_hints in
  let succs i =
    if Analysis.reachable value i then
      List.filter_map
        (fun (_, t) -> if Analysis.reachable value t then Some t else None)
        nodes.(i).Supergraph.succs
    else []
  in
  let plan =
    Wcet_cfg.Callgraph.condense ~num_nodes:n ~entries:[ graph.Supergraph.entry ] ~succs
  in
  let summary =
    match slice with
    | None -> None
    | Some lookup ->
      Some
        (fun ~comp ~input ->
          let members = plan.Wcet_util.Fixpoint.plan_comps.(comp) in
          let ok =
            Array.for_all
              (fun m ->
                match lookup m with
                | None -> false
                | Some row -> equal_cinput (input m) row.sc_input)
              members
          in
          if not ok then None
          else Some (fun m -> match lookup m with Some row -> row.sc_states | None -> None))
  in
  let solution, pinfo =
    FP.solve_plan ?summary ?cancel ?domains ~plan
      {
        FP.num_nodes = n;
        entries = [ (graph.Supergraph.entry, initial) ];
        succs;
        transfer = (fun i st -> transfer None i st);
        widening_points = (fun _ -> false);
        widening_delay = max_int;
      }
  in
  let computed = ref 0 and applied = ref 0 in
  Array.iteri
    (fun cid a ->
      if a then incr applied
      else if pinfo.FP.per_comp_transfers.(cid) > 0 then begin
        incr computed;
        Metrics.observe m_scc_transfers pinfo.FP.per_comp_transfers.(cid)
      end)
    pinfo.FP.applied;
  Metrics.incr m_summary_computes !computed;
  Metrics.incr m_summary_hits !applied;
  if Wcet_obs.Obs.on () then
    Array.iteri
      (fun cid members ->
        if (not pinfo.FP.applied.(cid)) && pinfo.FP.per_comp_transfers.(cid) > 0 then begin
          let funcs =
            List.sort_uniq compare
              (Array.to_list (Array.map (fun m -> nodes.(m).Supergraph.func) members))
          in
          Wcet_obs.Trace.with_span ~cat:"summary"
            ~attrs:
              [
                ("analysis", Wcet_obs.Trace.Str "cache");
                ("funcs", Wcet_obs.Trace.Str (String.concat "," funcs));
                ("nodes", Wcet_obs.Trace.Int (Array.length members));
                ("transfers", Wcet_obs.Trace.Int pinfo.FP.per_comp_transfers.(cid));
              ]
            "scc"
            (fun () -> ())
        end)
      plan.Wcet_util.Fixpoint.plan_comps;
  ( finish ~transfer ~nodes ~n solution,
    {
      sched_ext_input = pinfo.FP.ext_input;
      sched_components = !computed + !applied;
      sched_computed = !computed;
      sched_applied = !applied;
    } )

let pp_classification ppf = function
  | Always_hit -> Format.pp_print_string ppf "AH"
  | Always_miss -> Format.pp_print_string ppf "AM"
  | Not_classified -> Format.pp_print_string ppf "NC"
  | Bypass -> Format.pp_print_string ppf "BP"
