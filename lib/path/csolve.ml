module Analysis = Wcet_value.Analysis
module Supergraph = Wcet_cfg.Supergraph

let name = "csolve"
let path_sensitive = false
let fact_blind = true
let exact_witness = true

let solve (spec : Path_analysis.spec) (loops : Wcet_cfg.Loops.info) =
  try
    let t = Forest.build spec loops in
    let wcet, counts = Forest.solve_dag t in
    let n = Array.length spec.Path_analysis.value.Analysis.graph.Supergraph.nodes in
    let sol = { Path_analysis.wcet; node_counts = Forest.counts_to_array ~n counts } in
    match Path_analysis.check_identity sol spec.Path_analysis.times with
    | Ok () -> Ok sol
    | Error d ->
      Error
        (Path_analysis.internal
           (Printf.sprintf "csolve count/time identity off by %d cycles" d))
  with Forest.Failed e -> Error e
