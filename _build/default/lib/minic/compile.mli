(** One-call MiniC compilation driver: parse, typecheck, pull in the needed
    runtime clusters, generate code and link. *)

exception Error of string

(** [compile ?options ?map ?entry source] produces a linked program whose
    startup stub calls [entry] (default ["main"]). Raises [Error] with a
    located message on any front-end, code-generation or link failure. *)
val compile :
  ?options:Codegen.options ->
  ?map:Pred32_memory.Memory_map.t ->
  ?entry:string ->
  string ->
  Pred32_asm.Program.t

(** [compile_to_unit ?options source] stops after code generation (used by
    tests that inspect the assembly). *)
val compile_to_unit : ?options:Codegen.options -> string -> Pred32_asm.Ast.unit_

(** [frontend source] parses and typechecks without generating code. *)
val frontend : string -> Tast.tprogram

(** [frontend_with_runtime ?options source] like {!frontend} but with the
    runtime clusters the program needs included (so sources calling runtime
    routines by name typecheck). *)
val frontend_with_runtime : ?options:Codegen.options -> string -> Tast.tprogram
