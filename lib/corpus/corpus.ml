module Codegen = Minic.Codegen
module Hw_config = Pred32_hw.Hw_config
module Program = Pred32_asm.Program
module Annot = Wcet_annot.Annot
module Pcg = Wcet_util.Pcg

type scenario = {
  source : string;
  options : Codegen.options;
  hw : Hw_config.t;
  annotations : Program.t -> Annot.t;
  inputs : (string * int * int) list list;
}

type entry = {
  id : string;
  title : string;
  expectation : string;
  conforming : scenario;
  violating : scenario;
}

let no_annot (_ : Program.t) = Annot.empty

let annot_text text (_ : Program.t) =
  match Annot.parse text with
  | Ok a -> a
  | Error msg -> invalid_arg ("corpus annotation: " ^ msg)

let scenario ?(options = Codegen.default_options) ?(hw = Hw_config.default)
    ?(annotations = no_annot) ?(inputs = [ [] ]) source =
  { source; options; hw; annotations; inputs }

(* ------------------------------------------------------------------ *)
(* Section 4.2: MISRA rule pairs                                      *)
(* ------------------------------------------------------------------ *)

let rule_13_4 =
  {
    id = "13.4";
    title = "no floating-point loop control";
    expectation =
      "integer counter loops are bounded automatically; float-controlled loops (software \
       arithmetic calls) are not";
    conforming =
      scenario
        "int acc; int main() { int i; acc = 0; for (i = 0; i < 48; i = i + 1) { acc = acc + i * 3; } return acc; }";
    violating =
      scenario
        ~annotations:
          (annot_text "loop in main bound 48\nloop in __f_norm_pack bound 32")
        "int acc; int main() { float f; acc = 0; for (f = 0.0; f < 48.0; f = f + 1.0) { acc = acc + 3; } return acc; }";
  }

let bit_inputs sym = [ [ (sym, 0, 0) ]; [ (sym, 0, 0x55555555) ]; [ (sym, 0, -1) ] ]

let rule_13_6 =
  {
    id = "13.6";
    title = "loop counters unmodified in the body";
    expectation =
      "constant-step counters give exact bounds; data-dependent counter bumps defeat the \
       induction pattern";
    conforming =
      scenario ~inputs:(bit_inputs "data")
        "int data; int acc; int main() { int i; int skip; acc = 0; skip = 0; for (i = 0; i < 64; i = i + 1) { if ((data >> (i & 31)) & 1) { skip = skip + 1; } else { acc = acc + i; } } return acc + skip; }";
    violating =
      scenario ~inputs:(bit_inputs "data")
        ~annotations:(annot_text "loop in main bound 64")
        "int data; int acc; int main() { int i; acc = 0; for (i = 0; i < 64; i = i + 1) { if ((data >> (i & 31)) & 1) { i = i * 2; } acc = acc + i; } return acc; }";
  }

let sign_inputs = [ [ ("x", 0, 5) ]; [ ("x", 0, -5) ]; [ ("x", 0, 0) ]; [ ("x", 0, 100000) ] ]

let rule_14_1 =
  {
    id = "14.1";
    title = "no unreachable code";
    expectation =
      "dead code the analysis cannot prove dead adds spurious heavy paths to the \
       over-approximated control flow";
    conforming =
      scenario ~inputs:sign_inputs
        "int x; int main() { int r; if (x > 0) { r = x; } else { r = 0 - x; } return r; }";
    violating =
      scenario ~inputs:sign_inputs
        "int x; int acc; int main() { int r; int i; if (((x ^ x) & 15) != 0) { for (i = 0; i < 300; i = i + 1) { acc = acc + i; } } if (x > 0) { r = x; } else { r = 0 - x; } return r; acc = 0; }";
  }

(* The irreducible goto variant needs flow facts on the cycle's blocks; they
   are synthesized from the built graph (block addresses are not stable
   across edits, names are). *)
let goto_cycle_annot (program : Program.t) =
  let graph = Wcet_cfg.Supergraph.build program in
  let loops = Wcet_cfg.Loops.analyze graph in
  let facts =
    List.concat_map
      (fun scc ->
        List.map
          (fun nid ->
            let node = graph.Wcet_cfg.Supergraph.nodes.(nid) in
            Annot.Max_count
              (Annot.At_addr node.Wcet_cfg.Supergraph.block.Wcet_cfg.Func_cfg.entry, 52))
          scc)
      loops.Wcet_cfg.Loops.irreducible
  in
  { Annot.empty with Annot.flow_facts = facts }

let rule_14_4 =
  {
    id = "14.4";
    title = "no goto";
    expectation =
      "goto into a loop builds an irreducible region: no automatic bound exists, manual flow \
       facts are mandatory";
    conforming =
      scenario
        ~inputs:[ [ ("flag", 0, 0) ]; [ ("flag", 0, 1) ] ]
        "int flag; int acc; int main() { int i; acc = 0; for (i = 0; i < 50; i = i + 1) { if (flag) { acc = acc + 2; } acc = acc + 1; } return acc; }";
    violating =
      scenario
        ~inputs:[ [ ("flag", 0, 0) ]; [ ("flag", 0, 1) ] ]
        ~annotations:goto_cycle_annot
        "int flag; int acc; int main() { int i; i = 0; acc = 0; if (flag) { goto inside; } top: acc = acc + 1; inside: acc = acc + 2; i = i + 1; if (i < 50) { goto top; } return acc; }";
  }

let rule_14_5 =
  {
    id = "14.5";
    title = "no continue";
    expectation =
      "continue only adds back edges to the existing header: analyzability and precision are \
       unchanged (style-only rule)";
    conforming =
      scenario ~inputs:(bit_inputs "data")
        "int data; int acc; int main() { int i; acc = 0; for (i = 0; i < 40; i = i + 1) { if (((data >> (i & 31)) & 1) == 0) { acc = acc + i; } } return acc; }";
    violating =
      scenario ~inputs:(bit_inputs "data")
        "int data; int acc; int main() { int i; acc = 0; for (i = 0; i < 40; i = i + 1) { if ((data >> (i & 31)) & 1) { continue; } acc = acc + i; } return acc; }";
  }

let arg_inputs =
  [
    [ ("n", 0, 4); ("a0", 0, 1); ("a1", 0, 2); ("a2", 0, 3); ("a3", 0, 4) ];
    [ ("n", 0, 0); ("a0", 0, 9); ("a1", 0, 9); ("a2", 0, 9); ("a3", 0, 9) ];
    [ ("n", 0, 2); ("a0", 0, 7); ("a1", 0, 8); ("a2", 0, 0); ("a3", 0, 0) ];
  ]

let rule_16_1 =
  {
    id = "16.1";
    title = "no variadic functions";
    expectation =
      "the variadic argument loop is input-data dependent; a fixed-arity interface is \
       analyzed automatically";
    conforming =
      scenario ~inputs:arg_inputs
        "int n; int a0; int a1; int a2; int a3; int sum4(int w, int x, int y, int z) { return w + x + y + z; } int main() { return sum4(a0, a1, a2, a3); }";
    violating =
      scenario ~inputs:arg_inputs
        ~annotations:(annot_text "assume n in [ 0 4 ]")
        "int n; int a0; int a1; int a2; int a3; int sum(int count, ...) { int s; int i; s = 0; for (i = 0; i < count; i = i + 1) { s = s + __va_arg(i); } return s; } int main() { return sum(n, a0, a1, a2, a3); }";
  }

let rule_16_2 =
  {
    id = "16.2";
    title = "no recursion";
    expectation =
      "recursion requires an explicit depth annotation before any analysis is possible; the \
       iterative version is automatic";
    conforming =
      scenario
        "int main() { int n; int r; int i; n = 12; r = 1; for (i = 2; i <= n; i = i + 1) { r = r * i; } return r; }";
    violating =
      scenario
        ~annotations:(annot_text "recursion fact depth 13")
        "int fact(int n) { if (n < 2) { return 1; } return n * fact(n - 1); } int main() { return fact(12); }";
  }

let rule_20_4 =
  {
    id = "20.4";
    title = "no dynamic heap allocation";
    expectation =
      "statically placed buffers have known addresses (cache-analyzable); heap blocks after \
       an input-sized allocation do not";
    conforming =
      scenario
        "int buf[16]; int out; int main() { int i; int *p; p = buf; for (i = 0; i < 16; i = i + 1) { p[i] = i * 2; } out = p[5]; return out; }";
    violating =
      scenario
        ~inputs:[ [ ("n", 0, 4) ]; [ ("n", 0, 32) ]; [ ("n", 0, 64) ] ]
        ~annotations:(annot_text "assume n in [ 4 64 ]")
        "int n; int out; int main() { int i; int *p; int *q; p = malloc(n); q = malloc(64); for (i = 0; i < 16; i = i + 1) { q[i] = i * 2; } out = q[5]; return out; }";
  }

let setjmp_annot (program : Program.t) =
  let continuations = Wcet_cfg.Resolver.scan_setjmp_continuations program in
  {
    Annot.empty with
    Annot.setjmp_auto = true;
    (* the longjmp retry cycle runs at most once per execution *)
    loop_bounds = List.map (fun c -> (Annot.At_addr c, 1)) continuations;
  }

let code_inputs =
  [
    List.init 8 (fun i -> ("codes", i, i + 1));
    List.init 8 (fun i -> ("codes", i, if i = 5 then -7 else i));
    List.init 8 (fun i -> ("codes", i, if i = 0 then -1 else i));
  ]

let rule_20_7 =
  {
    id = "20.7";
    title = "no setjmp/longjmp";
    expectation =
      "longjmp builds cross-function cycles the loop analysis cannot bound; structured error \
       returns are automatic";
    conforming =
      scenario ~inputs:code_inputs
        "int codes[8]; int out; int process(int c) { if (c < 0) { return 0 - 1; } out = out + c; return 0; } int main() { int i; int r; for (i = 0; i < 8; i = i + 1) { r = process(codes[i]); if (r < 0) { return 0 - 1; } } return out; }";
    violating =
      scenario ~inputs:code_inputs ~annotations:setjmp_annot
        "int codes[8]; int out; int buf[3]; void process(int c) { if (c < 0) { __longjmp(buf, 1); } out = out + c; } int main() { int i; int r; r = __setjmp(buf); if (r != 0) { return 0 - 1; } for (i = 0; i < 8; i = i + 1) { process(codes[i]); } return out; }";
  }

let rule_entries =
  [ rule_13_4; rule_13_6; rule_14_1; rule_14_4; rule_14_5; rule_16_1; rule_16_2; rule_20_4;
    rule_20_7 ]

(* ------------------------------------------------------------------ *)
(* Section 4.3: tier-two scenarios                                    *)
(* ------------------------------------------------------------------ *)

let modes_source =
  "int mode; int sensor[8]; int out; \
   int nav_update() { int i; int s; s = 0; for (i = 0; i < 8; i = i + 1) { s = s + sensor[i]; } return s; } \
   int flight_control() { int i; int s; s = 0; for (i = 0; i < 150; i = i + 1) { s = s + i * 2; } return s + nav_update(); } \
   int ground_control() { int s; s = nav_update(); return s >> 3; } \
   int main() { if (mode == 1) { out = flight_control(); } else { out = ground_control(); } return out; }"

let modes_entry =
  {
    id = "modes";
    title = "operating modes (flight vs ground)";
    expectation =
      "a per-mode analysis (assume mode = 0) is far tighter than the mode-oblivious bound \
       dominated by the expensive mode";
    conforming =
      scenario ~inputs:[ [ ("mode", 0, 0) ] ]
        ~annotations:(annot_text "assume mode = 0")
        modes_source;
    violating =
      scenario ~inputs:[ [ ("mode", 0, 0) ]; [ ("mode", 0, 1) ] ] modes_source;
  }

let message_source =
  "int cycle; int len; int rx[16]; int tx[16]; int seed; \
   int read_msg() { int i; int s; s = 0; for (i = 0; i < len; i = i + 1) { s = s + rx[i]; } return s; } \
   int write_msg() { int i; for (i = 0; i < len; i = i + 1) { tx[i] = seed + i; } return len; } \
   int main() { int r; r = 0; if ((cycle & 1) == 0) { r = r + read_msg(); } if ((cycle & 1) == 1) { r = r + write_msg(); } return r; }"

let message_inputs =
  [
    [ ("cycle", 0, 0); ("len", 0, 16) ];
    [ ("cycle", 0, 1); ("len", 0, 16) ];
    [ ("cycle", 0, 2); ("len", 0, 3) ];
  ]

let message_entry =
  {
    id = "message";
    title = "message buffer handler (data-dependent algorithm)";
    expectation =
      "documenting buffer sizes and read/write exclusivity (design knowledge) removes the \
       impossible both-paths worst case";
    conforming =
      scenario ~inputs:message_inputs
        ~annotations:(annot_text "assume len in [ 0 16 ]\nexclusive read_msg, write_msg")
        message_source;
    violating =
      scenario ~inputs:message_inputs
        ~annotations:(annot_text "assume len in [ 0 16 ]")
        message_source;
  }

(* The device base address arrives in a register at run time (like a
   driver receiving a port handle), so the value analysis cannot narrow the
   accessed region at all; the scratch area starts at 0x20000000 and [regs]
   is its first symbol. *)
let memory_source =
  "int base_addr; scratch int regs[16]; int out; \
   int poll(int *base) { int i; int s; s = 0; for (i = 0; i < 12; i = i + 1) { s = s + base[i]; } return s; } \
   int main() { out = poll((int*)base_addr); return out; }"

let memory_inputs =
  [ [ ("base_addr", 0, 0x20000000) ]; [ ("base_addr", 0, 0x20000010) ] ]

let memory_entry =
  {
    id = "memory";
    title = "imprecise memory accesses (per-function region documentation)";
    expectation =
      "without region knowledge every unresolved access is charged the slowest module \
       (I/O) and damages the data cache; a memory annotation restores the fast bound";
    conforming =
      scenario ~inputs:memory_inputs
        ~annotations:(annot_text "memory poll = scratch")
        memory_source;
    violating = scenario ~inputs:memory_inputs memory_source;
  }

let error_source =
  "int errs; int out; \
   void recover(int k) { int i; for (i = 0; i < 120; i = i + 1) { out = out + k + i; } } \
   int main() { int i; int s; s = 0; for (i = 0; i < 12; i = i + 1) { if ((errs >> i) & 1) { recover(i); } s = s + i; } return s; }"

let error_entry =
  {
    id = "errors";
    title = "error handling (documented error scenarios)";
    expectation =
      "assuming every iteration can raise an error multiplies the recovery cost by the loop \
       bound; documenting 'at most one error per run' removes it";
    conforming =
      scenario
        ~inputs:[ [ ("errs", 0, 0) ]; [ ("errs", 0, 1 lsl 5) ]; [ ("errs", 0, 1 lsl 11) ] ]
        ~annotations:(annot_text "maxcount recover <= 1")
        error_source;
    violating =
      scenario
        ~inputs:[ [ ("errs", 0, 0) ]; [ ("errs", 0, 0xFFF) ] ]
        error_source;
  }

let arith_inputs =
  let rng = Pcg.create ~seed:77L () in
  List.init 4 (fun _ ->
      List.concat
        (List.init 8 (fun i ->
             let x = Int64.to_int (Pcg.next_uint32 rng) in
             let y = Int64.to_int (Pcg.next_uint32 rng) in
             [ ("xs", i, x); ("ys", i, if y = 0 then 1 else y) ])))

let arith_entry =
  {
    id = "arith";
    title = "software arithmetic (lDivMod vs restoring divider)";
    expectation =
      "the average-case-optimized divider needs a manual iteration bound and its WCET bound \
       is dominated by the rare worst case; the fixed-latency divider is automatic and tight";
    conforming =
      scenario ~hw:Hw_config.no_hw_div ~inputs:arith_inputs
        "unsigned xs[8]; unsigned ys[8]; unsigned out; \
         int main() { int i; unsigned q; out = 0; for (i = 0; i < 8; i = i + 1) { q = __udiv32_restoring(xs[i], ys[i]); out = out + q; } return (int)(out & 0xFFFF); }";
    violating =
      scenario ~hw:Hw_config.no_hw_div
        ~options:{ Codegen.default_options with Codegen.soft_div = true }
        ~inputs:arith_inputs
        ~annotations:(annot_text "loop in __udivmod32 bound 40")
        "unsigned xs[8]; unsigned ys[8]; unsigned out; \
         int main() { int i; out = 0; for (i = 0; i < 8; i = i + 1) { out = out + xs[i] / ys[i]; } return (int)(out & 0xFFFF); }";
  }

(* Tier-one challenge 1: function pointers (user-defined event handlers
   exchanged between a communication library and the application). The
   annotation lists the possible targets of every indirect call site. *)
let fptr_annot (program : Program.t) =
  let sites =
    List.concat_map
      (fun f ->
        Program.disassemble program f
        |> List.filter_map (fun (addr, insn) ->
               match insn with
               | Pred32_isa.Insn.Call_reg _ -> Some addr
               | _ -> None))
      program.Program.functions
  in
  { Annot.empty with Annot.call_targets = List.map (fun s -> (s, [ "on_can"; "on_flexray" ])) sites }

let handler_inputs =
  [
    (("sel", 0, 0) :: List.init 4 (fun i -> ("ev", i, i + 3)));
    (("sel", 0, 1) :: List.init 4 (fun i -> ("ev", i, 2 * i)));
  ]

let handlers_entry =
  {
    id = "handlers";
    title = "function pointers (event handlers, tier-one challenge)";
    expectation =
      "a constant handler resolves automatically through the value analysis; an input-selected \
       handler needs a call-targets annotation to reconstruct the control flow at all";
    conforming =
      scenario
        ~inputs:[ List.init 4 (fun i -> ("ev", i, i + 3)) ]
        "int ev[4]; int out; \
         int on_tick(int v) { return v + 1; } \
         int main() { int i; int (*h)(int); h = on_tick; out = 0; for (i = 0; i < 4; i = i + 1) { out = out + h(ev[i]); } return out; }";
    violating =
      scenario ~inputs:handler_inputs ~annotations:fptr_annot
        "int sel; int ev[4]; int out; int (*handler)(int); \
         int on_can(int v) { int i; int s; s = v; for (i = 0; i < 6; i = i + 1) { s = s + i; } return s; } \
         int on_flexray(int v) { return v * 2; } \
         int main() { int i; if (sel) { handler = on_can; } else { handler = on_flexray; } out = 0; for (i = 0; i < 4; i = i + 1) { out = out + handler(ev[i]); } return out; }";
  }

(* Tier-one challenge 2 revisited under the relational (octagon) value
   domain: a [while (i != n)] loop whose limit is an assume-bounded input,
   and buffer indices computed as [n - i]. The interval domain cannot bound
   the [!=] exit against a non-singleton limit (A0505) and loses [n - i]
   to wraparound (the access spans regions, A0509); the octagon's
   difference constraints discharge both, and prove the post-loop access
   [buf[n - i]] is exactly [buf[0]]. *)
let relational_source =
  "int n; int buf[80]; int out; \
   int main() { int i; int j; int s; s = 0; i = 0; \
   while (i != n) { j = n - i; s = s + buf[j]; i = i + 1; } \
   out = buf[n - i]; return s + out; }"

let relational_inputs = [ [ ("n", 0, 0) ]; [ ("n", 0, 13) ]; [ ("n", 0, 64) ] ]

let relational_entry =
  {
    id = "relational";
    title = "relational loop exits and derived indices (octagon domain)";
    expectation =
      "documenting the input range (assume) lets the relational domain bound the != exit and \
       pin the derived indices; without it the loop needs a manual bound and the accesses \
       stay imprecise in every domain";
    conforming =
      scenario ~inputs:relational_inputs
        ~annotations:(annot_text "assume n in [ 0 64 ]")
        relational_source;
    violating =
      scenario ~inputs:relational_inputs
        ~annotations:(annot_text "loop in main bound 64")
        relational_source;
  }

let tier_two_entries =
  [
    modes_entry; message_entry; memory_entry; error_entry; arith_entry; handlers_entry;
    relational_entry;
  ]

let all = rule_entries @ tier_two_entries

let find id = List.find_opt (fun e -> e.id = id) all
