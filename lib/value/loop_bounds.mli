(** Automatic loop-bound detection on the binary (the data-flow based
    approach of the paper's loop analysis phase).

    For each natural loop, the analysis looks for an exit branch that
    dominates the back edges, identifies the counter operand (a frame slot
    or global the branch operand was loaded from), verifies every in-loop
    store to it is a constant-step update, and combines the counter's entry
    interval with the limit operand's interval into an iteration bound.

    Loops escaping this pattern — float-controlled conditions compiled to
    library calls (rule 13.4), counters with irregular updates (13.6),
    input-dependent limits without assume-annotations, irreducible cycles
    (14.4/20.7) — are reported [Unbounded] with a reason, matching the
    paper's claim that they require manual annotation. *)

(** Structured provenance of an [Unbounded] verdict: {e why} the bound
    derivation failed, so downstream consumers (the analyzability auditor,
    diagnostics) can map each failure onto the paper's challenge taxonomy
    instead of string-matching the human-readable reason. *)
type cause =
  | Input_dependent
      (** the limit operand's interval is unconstrained input data — the
          paper's tier-one "input-data-dependent loops" challenge; an
          [assume] or [loop bound] annotation discharges it *)
  | Irregular_counter
      (** the counter's in-loop updates are not a constant step in one
          direction (the structure MISRA rule 13.6 forbids) *)
  | Aliased_counter
      (** the counter may be written through an unresolved pointer
          (rule 13.6's address-taken case) *)
  | Structural
      (** no dominating single-side exit branch to anchor the induction
          argument on (multi-exit or irreducibly-entered loop) *)
  | Unreachable_entry  (** the loop entry is dead code; bound irrelevant *)

type verdict =
  | Bounded of int  (** max back-edge executions per loop entry *)
  | Unbounded of cause * string  (** provenance plus human-readable reason *)

type t = {
  per_loop : verdict array;  (** indexed like [Loops.info.loops] *)
}

(** [analyze ?rel result loops] — [rel] is the relational fallback hook of
    an octagon escalation ({!Analysis.escalation.esc_rel}): when the
    interval derivation fails, [rel node ~counter ~other] bounds
    [other - counter] at the exit node's branch point, and a finite upper bound
    U with a loop-invariant limit operand and counter progress >= d yields
    the bound ceil(U/d) (for [!=] exits, exact unit steps and a
    non-negative lower bound are additionally required). Without [rel] the
    result is bit-identical to the interval-only analysis. *)
val analyze :
  ?rel:(int -> counter:Pred32_isa.Reg.t -> other:Pred32_isa.Reg.t -> int option * int option) ->
  Analysis.result ->
  Wcet_cfg.Loops.info ->
  t

val cause_name : cause -> string

val pp : Wcet_cfg.Supergraph.t -> Wcet_cfg.Loops.info -> Format.formatter -> t -> unit
