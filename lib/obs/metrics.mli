(** Process-wide metrics registry: counters, gauges and histograms with
    static labels.

    Register at module-initialization time (top-level [let] in the library
    that populates the metric); record from anywhere, including domain-pool
    workers — cells are atomic. While {!Obs.on} is false, every recording
    call is an allocation-free no-op. [wcet_tool metrics] lists the
    registry; a test pins it so names never silently change meaning. *)

type counter
type gauge
type histogram

(** Registration. [labels] are static key=value pairs baked into the
    metric's full name, rendered [name{key=value,...}]. Registering the
    same full name twice raises [Invalid_argument]. *)

val counter : ?labels:(string * string) list -> name:string -> help:string -> unit -> counter

val gauge : ?labels:(string * string) list -> name:string -> help:string -> unit -> gauge

(** [buckets] are strictly increasing {e inclusive} upper bounds; one
    overflow cell past the last bound is added automatically. *)
val histogram :
  ?labels:(string * string) list ->
  name:string ->
  help:string ->
  buckets:int array ->
  unit ->
  histogram

(** Recording — no-ops while {!Obs.on} is false. *)

val incr : counter -> int -> unit

(** [decr c n] takes back [n] earlier increments — for the rare event that
    is reclassified after being counted (e.g. a cache hit whose payload
    later fails to decode becomes a miss). *)
val decr : counter -> int -> unit

val set : gauge -> int -> unit

(** [set_max g v] raises the gauge to [v] if [v] is larger (peak tracking). *)
val set_max : gauge -> int -> unit

val observe : histogram -> int -> unit

(** [observe_n h v ~n] records the value [v] [n] times (bulk merge of a
    pre-tallied histogram, e.g. the lDivMod shard counts). *)
val observe_n : histogram -> int -> n:int -> unit

(** Reading. *)

type value =
  | Counter_value of int
  | Gauge_value of int
  | Histogram_value of {
      buckets : (int * int) array;  (** (inclusive upper bound, count) *)
      overflow : int;
      sum : int;
      count : int;
    }

(** Every registered metric as [(full name, help)], sorted by name. *)
val all : unit -> (string * string) list

(** [(full name, help, current value)], sorted by name. *)
val snapshot : unit -> (string * string * value) list

val find : string -> value option

(** Zero every cell (registrations survive). *)
val reset : unit -> unit

val to_json : unit -> Wcet_diag.Json.t

(** ["counter"], ["gauge"] or ["histogram"] — the metric type of a value,
    for generated documentation and the Prometheus TYPE line. *)
val kind_name : value -> string

(** [split_name full] parses a registered full name back into its base name
    and static labels: ["name{k=v,k2=w}"] becomes [("name", [k,v; k2,w])]. *)
val split_name : string -> string * (string * string) list

(** The whole registry in Prometheus text exposition format (version 0.0.4):
    one HELP/TYPE header per metric family, label values quoted, histogram
    buckets converted to cumulative counts with a closing [le="+Inf"]
    bucket plus [_sum] and [_count] series. *)
val to_prometheus : unit -> string
