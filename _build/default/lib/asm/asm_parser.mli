(** Textual PRED32 assembly parser.

    Accepts the same surface syntax {!Ast.pp_unit} prints, so hand-written
    or dumped assembly can be fed back to the assembler (and to the WCET
    tool on [.s] files):

    {v
    .func main
      li r2, 21
      muli r1, r2, 2          ; comment
      ret
    loop:                      ; labels end with ':'
      beq r2, r0, loop
    .data table ram
      .word 42
      .zeros 3
      .addr main
    v}

    Registers are [r0]..[r15] plus the aliases [fp], [sp], [lr].
    Immediate-form ALU instructions take the [i] suffix ([addi], [slti],
    ...). Memory operands use [off(base)]. *)

exception Error of string * int  (** message, line number *)

val parse : string -> Ast.unit_
