lib/lp/ilp.mli: Simplex Wcet_util
