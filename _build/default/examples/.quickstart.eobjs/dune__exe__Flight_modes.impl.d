examples/flight_modes.ml: Format List Minic Pred32_hw Pred32_sim Wcet_annot Wcet_core
