lib/asm/asm_parser.ml: Ast Format List Pred32_isa String
