lib/value/resolve_iter.ml: Analysis Array Aval List Pred32_asm Wcet_cfg
