(** The target's memory map: a set of non-overlapping regions. *)

type t

(** [make regions] checks that regions are non-overlapping and word-aligned.
    Raises [Invalid_argument] otherwise. *)
val make : Region.t list -> t

val regions : t -> Region.t list

(** [find t addr] is the region containing byte address [addr]. *)
val find : t -> int -> Region.t option

val find_by_name : t -> string -> Region.t option

(** Worst read/write latencies over the data regions an unresolved access
    may target (everything except ROM): what an analysis must assume for an
    unknown address with no annotation. *)
val worst_read_latency : t -> int

val worst_write_latency : t -> int

(** The default PRED32 board used throughout examples, tests and benches:

    - [rom]: 256 KiB at 0x00000000, latency 2, I-cacheable
    - [ram]: 1 MiB at 0x10000000, latency 6, D-cacheable (stack at top, heap
      growing from 0x10080000)
    - [scratch]: 64 KiB at 0x20000000, latency 1, uncached fast scratchpad
    - [io]: 64 KiB at 0xF0000000, latency 40, uncached device registers *)
val default : t

(** Conventional addresses on the default board. *)
val default_stack_top : int

val default_heap_base : int
val pp : Format.formatter -> t -> unit
