(** Reference model of the lDivMod software divider (Section 4.4, Table 1).

    Mirrors, bit for bit, the MiniC runtime routine [__udivmod32] in
    {!Minic.Runtime}: 32-by-32-bit unsigned division by successive
    approximation. Divisors below 2^16 finish in two fixed-latency EDIV
    steps (0 iterations); larger divisors get a partial quotient estimated
    from their top 16 bits, corrected until the remainder drops below the
    divisor. The iteration count is strongly data-dependent — the paper's
    example of software with good average but poor worst-case
    predictability — and there is no simple way to compute it from the
    inputs other than running the algorithm.

    The property test suite checks this model against the simulated MiniC
    routine on random inputs (quotient, remainder, and iteration count). *)

type result = { quotient : int; remainder : int; iterations : int }

(** [udivmod a b] for 32-bit unsigned [a], [b]. Division by zero returns
    quotient [0xFFFFFFFF] and remainder [a] (the PRED32 convention). *)
val udivmod : int -> int -> result

(** [iterations a b] is just the loop-pass count. *)
val iterations : int -> int -> int

(** The restoring divider used as the WCET-predictable baseline: always 32
    iterations. *)
val udivmod_restoring : int -> int -> result

(** [histogram ?domains ~samples ~seed ()] reproduces the Table 1
    experiment: iteration counts of [udivmod] over uniformly random input
    pairs. Returns a sorted association list (iteration count, occurrences)
    plus the maximal observed iteration inputs.

    The sample stream is split into a fixed number of shards with
    independent PCG streams and fanned out over a {!Wcet_util.Parallel}
    domain pool ([domains] defaults to the [PAR_DOMAINS]/hardware default).
    The shard layout and merge order depend only on [samples], so the
    result is bit-identical for every domain count. *)
val histogram :
  ?domains:int ->
  samples:int ->
  seed:int64 ->
  unit ->
  (int * int) list * (int * (int * int)) list
(** The second component lists the top observed iteration counts with a
    sample input pair for each. *)

(** The paper's Table 1 bucket boundaries: 0, 1, 2, 3, 4-9, 10-19, 20-39,
    40-59, 60-79, 80-99, 100-135, then exact rows for the tail. *)
val bucketize : (int * int) list -> (string * int) list
