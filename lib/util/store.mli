(** Content-addressed on-disk store.

    One file per entry under [root/<k0k1>/<key>.wcache], where [key] is a
    caller-supplied content hash (hex). Each file carries a checksummed
    envelope ([kind], [version], md5, length) so corruption is detected on
    read, and writes are temp-file + atomic-rename so concurrent domains
    and processes sharing a store are safe. No operation ever raises on
    filesystem trouble: reads degrade to [Miss]/[Corrupt], writes to
    [Error]. The store is policy-free — key derivation, versioning and
    eviction decisions belong to the caller (see [Wcet_core.Report_cache]). *)

type t

type read_outcome =
  | Hit of { kind : string; version : string; payload : string }
  | Miss  (** no entry under that key *)
  | Corrupt of string  (** entry exists but its envelope or checksum is bad *)

type stats = { entries : int; bytes : int; by_kind : (string * int) list }

type verify_report = {
  checked : int;
  valid : int;
  corrupt : string list;  (** keys of entries with a bad envelope or checksum *)
  mismatched : string list;  (** keys whose version differs from [expect_version] *)
}

(** [open_store root] creates [root] (and parents) if needed. *)
val open_store : string -> (t, string) result

val root : t -> string

(** Path an entry for [key] would live at (exposed for tests/tooling). *)
val entry_path : t -> string -> string

val mem : t -> key:string -> bool
val read : t -> key:string -> read_outcome

(** [write t ~key ~kind ~version payload] atomically (re)places the entry;
    returns the bytes written including the envelope. *)
val write : t -> key:string -> kind:string -> version:string -> string -> (int, string) result

(** [remove t ~key] deletes the entry; [false] if it did not exist. *)
val remove : t -> key:string -> bool

(** Entry count, total on-disk bytes, and per-[kind] entry counts. *)
val stats : t -> stats

(** Re-reads every entry end to end, checking envelope and checksum; with
    [expect_version], entries recorded under a different version are
    reported as [mismatched] (they are stale, not corrupt). *)
val verify : ?expect_version:string -> t -> verify_report

(** Removes every entry (and leftover temporary files); returns the number
    of entries removed. *)
val clear : t -> int
