module Rat = Wcet_util.Rat
module Supergraph = Wcet_cfg.Supergraph
module Loops = Wcet_cfg.Loops
module Analysis = Wcet_value.Analysis

module Metrics = Wcet_obs.Metrics

let m_solves = Metrics.counter ~name:"ipet_solves" ~help:"IPET problems handed to the ILP solver" ()

let m_constraints =
  Metrics.gauge ~name:"ipet_constraints" ~help:"Constraint rows of the last IPET problem" ()

let m_variables =
  Metrics.gauge ~name:"ipet_variables" ~help:"Flow variables of the last IPET problem" ()

module Path_analysis = Wcet_path.Path_analysis

type fact = Path_analysis.fact = {
  fact_coeffs : (int * int) list;
  fact_bound : int;
  fact_label : string;
}

type spec = Path_analysis.spec = {
  value : Analysis.result;
  times : int array;
  loop_bounds : (int * int) list;
  facts : fact list;
}

type solution = Path_analysis.solution = { wcet : int; node_counts : int array }

let name = "ipet"
let path_sensitive = false
let fact_blind = false
let exact_witness = false

let solve (spec : spec) (loops : Loops.info) =
  let graph = spec.value.Analysis.graph in
  let n = Array.length graph.Supergraph.nodes in
  let entry = graph.Supergraph.entry in
  let reachable i = Analysis.reachable spec.value i in
  let feasible = Array.init n (fun i -> Analysis.feasible_successors spec.value i) in
  let indeg = Array.make n 0 in
  Array.iter (List.iter (fun (_, t) -> indeg.(t) <- indeg.(t) + 1)) feasible;
  (* Chain collapsing: u merges into its unique successor v when v has a
     unique predecessor and is not the entry. *)
  let next = Array.make n (-1) in
  Array.iteri
    (fun u succs ->
      match succs with
      | [ (_, v) ] when indeg.(v) = 1 && v <> entry && v <> u -> next.(u) <- v
      | _ -> ())
    feasible;
  let merged_into = Array.make n false in
  Array.iter (fun v -> if v >= 0 then merged_into.(v) <- true) next;
  let super_of = Array.make n (-1) in
  let super_members : int list list ref = ref [] in
  let super_count = ref 0 in
  for u = 0 to n - 1 do
    if reachable u && not merged_into.(u) then begin
      let id = !super_count in
      incr super_count;
      let rec collect v acc =
        super_of.(v) <- id;
        if next.(v) >= 0 then collect next.(v) (v :: acc) else List.rev (v :: acc)
      in
      super_members := collect u [] :: !super_members
    end
  done;
  let members = Array.make !super_count [] in
  List.iter
    (fun ms -> match ms with [] -> () | v :: _ -> members.(super_of.(v)) <- ms)
    !super_members;
  let super_time =
    Array.map (fun ms -> List.fold_left (fun acc v -> acc + spec.times.(v)) 0 ms) members
  in
  (* Super edges: feasible edges not swallowed by chain collapsing, tagged
     with their original (src, dst) so loop bounds can find them. *)
  let edge_list = ref [] in
  let edge_count = ref 0 in
  let edge_index : (int * int, int list) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun u succs ->
      if reachable u then
        List.iter
          (fun (_, v) ->
            if next.(u) <> v then begin
              let id = !edge_count in
              incr edge_count;
              edge_list := (id, u, v) :: !edge_list;
              let prev = Option.value ~default:[] (Hashtbl.find_opt edge_index (u, v)) in
              Hashtbl.replace edge_index (u, v) (id :: prev)
            end)
          succs)
    feasible;
  let edges = Array.make !edge_count (0, 0) in
  List.iter (fun (id, u, v) -> edges.(id) <- (u, v)) !edge_list;
  let num_edges = !edge_count in
  (* Exit variables for supers without outgoing edges. *)
  let super_out = Array.make !super_count [] in
  let super_in = Array.make !super_count [] in
  Array.iteri
    (fun id (u, v) ->
      super_out.(super_of.(u)) <- id :: super_out.(super_of.(u));
      super_in.(super_of.(v)) <- id :: super_in.(super_of.(v)))
    edges;
  let exit_var = Array.make !super_count (-1) in
  let num_vars = ref num_edges in
  for s = 0 to !super_count - 1 do
    if super_out.(s) = [] then begin
      exit_var.(s) <- !num_vars;
      incr num_vars
    end
  done;
  let entry_super = super_of.(entry) in
  let constraints = ref [] in
  let add c = constraints := c :: !constraints in
  (* Flow conservation: in + [entry] = out + exit. *)
  for s = 0 to !super_count - 1 do
    let coeffs =
      List.map (fun e -> (e, Rat.one)) super_in.(s)
      @ List.map (fun e -> (e, Rat.minus_one)) super_out.(s)
      @ (if exit_var.(s) >= 0 then [ (exit_var.(s), Rat.minus_one) ] else [])
    in
    let rhs = if s = entry_super then Rat.minus_one else Rat.zero in
    add { Wcet_lp.Simplex.coeffs; op = Wcet_lp.Simplex.Eq; rhs }
  done;
  (* Loop bounds: sum(back) <= B * sum(entry). *)
  List.iter
    (fun (li, bound) ->
      let loop = loops.Loops.loops.(li) in
      let edge_vars pairs =
        List.concat_map
          (fun (u, v) -> Option.value ~default:[] (Hashtbl.find_opt edge_index (u, v)))
          pairs
      in
      let back = edge_vars loop.Loops.back_edges in
      let entries = edge_vars loop.Loops.entry_edges in
      if back <> [] then
        add
          {
            Wcet_lp.Simplex.coeffs =
              List.map (fun e -> (e, Rat.one)) back
              @ List.map (fun e -> (e, Rat.of_int (-bound))) entries;
            op = Wcet_lp.Simplex.Le;
            rhs = Rat.zero;
          })
    spec.loop_bounds;
  (* Node execution count as a linear form over variables: flow through its
     supernode. *)
  let count_form v =
    let s = super_of.(v) in
    if s < 0 then ([], 0)
    else
      (List.map (fun e -> (e, 1)) super_in.(s), if s = entry_super then 1 else 0)
  in
  List.iter
    (fun fact ->
      let coeffs = ref [] in
      let const = ref 0 in
      List.iter
        (fun (node, k) ->
          if node >= 0 && node < n && reachable node then begin
            let form, c = count_form node in
            const := !const + (k * c);
            List.iter (fun (e, w) -> coeffs := (e, Rat.of_int (k * w)) :: !coeffs) form
          end)
        fact.fact_coeffs;
      add
        {
          Wcet_lp.Simplex.coeffs = !coeffs;
          op = Wcet_lp.Simplex.Le;
          rhs = Rat.of_int (fact.fact_bound - !const);
        })
    spec.facts;
  (* Objective: time of each super times its flow; entry flow is the
     constant 1. *)
  let objective = Hashtbl.create 64 in
  Array.iteri
    (fun id (_, v) ->
      let t = super_time.(super_of.(v)) in
      if t <> 0 then
        Hashtbl.replace objective id (t + Option.value ~default:0 (Hashtbl.find_opt objective id)))
    edges;
  let maximize = Hashtbl.fold (fun e t acc -> (e, Rat.of_int t) :: acc) objective [] in
  let problem =
    { Wcet_lp.Simplex.num_vars = !num_vars; maximize; constraints = !constraints }
  in
  Metrics.incr m_solves 1;
  Metrics.set m_constraints (List.length !constraints);
  Metrics.set m_variables !num_vars;
  match Wcet_lp.Ilp.solve problem with
  | Wcet_lp.Ilp.Unbounded ->
    Error
      (Path_analysis.unbounded
         "some cycle has neither a derived loop bound nor an annotation (irreducible \
          control flow or an unbounded loop)")
  | Wcet_lp.Ilp.Infeasible -> Error (Path_analysis.infeasible "contradictory flow facts")
  | Wcet_lp.Ilp.Optimal (value, assignment) ->
    let base = super_time.(entry_super) in
    (* A fractional vertex can survive the branch-and-bound budget once
       weighted flow facts break total unimodularity. Flooring such an
       assignment edge-by-edge would desynchronize the counts from the
       bound; instead round every edge count up — the rounded objective
       dominates the LP relaxation, which dominates the ILP optimum, so
       the repaired bound stays sound and the count/time identity holds
       by construction. *)
    let fractional = Array.exists (fun x -> not (Rat.is_integer x)) assignment in
    let count_of e =
      if fractional then Rat.ceil assignment.(e) else Rat.floor assignment.(e)
    in
    let wcet =
      if fractional then
        base + Hashtbl.fold (fun e t acc -> acc + (t * count_of e)) objective 0
      else base + Rat.floor value
    in
    let node_counts = Array.make n 0 in
    for v = 0 to n - 1 do
      if reachable v && super_of.(v) >= 0 then begin
        let form, c = count_form v in
        let count = List.fold_left (fun acc (e, w) -> acc + (w * count_of e)) c form in
        node_counts.(v) <- count
      end
    done;
    let sol = { wcet; node_counts } in
    (match Path_analysis.check_identity sol spec.times with
    | Ok () -> Ok sol
    | Error d ->
      Error
        (Path_analysis.internal
           (Printf.sprintf "IPET count/time identity off by %d cycles" d)))
