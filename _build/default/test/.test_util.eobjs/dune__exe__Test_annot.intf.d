test/test_annot.mli:
