let div_source =
  {|
/* Software 32-bit unsigned division (the runtime the compiler emits calls
   to when the target has no hardware divider). */

unsigned __ediv_rem;
unsigned __udivmod_rem;
unsigned __ldivmod_iters;
unsigned __udiv_rest_rem;

/* 32-by-16-bit restoring division, fixed 32 rounds: the software stand-in
   for the EDIV instruction of the HCS12X. Quotient returned, remainder in
   __ediv_rem. */
unsigned __ediv(unsigned a, unsigned b) {
  unsigned q;
  unsigned r;
  int i;
  q = 0;
  r = 0;
  for (i = 0; i < 32; i = i + 1) {
    r = (r << 1) | ((a >> 31) & 1);
    a = a << 1;
    q = q << 1;
    if (r >= b) {
      r = r - b;
      q = q | 1;
    }
  }
  __ediv_rem = r;
  return q;
}

/* lDivMod: 32/32 division by successive approximation. For divisors that
   fit 16 bits, two EDIV steps finish the job (0 iterations). Otherwise a
   partial quotient is estimated from the divisor's top 16 bits and
   corrected until the remainder drops below the divisor; the iteration
   count is data-dependent (almost always 1). */
unsigned __udivmod32(unsigned a, unsigned b) {
  unsigned q;
  unsigned r;
  unsigned d;
  unsigned t;
  unsigned iters;
  unsigned qh;
  unsigned low;
  if (b == 0) {
    __udivmod_rem = a;
    __ldivmod_iters = 0;
    return 0xFFFFFFFF;
  }
  if (b < 0x10000) {
    qh = __ediv(a >> 16, b);
    low = (__ediv_rem << 16) | (a & 0xFFFF);
    t = __ediv(low, b);
    __udivmod_rem = __ediv_rem;
    __ldivmod_iters = 0;
    return (qh << 16) | t;
  }
  d = b >> 16;
  q = 0;
  r = a;
  iters = 0;
  do {
    iters = iters + 1;
    t = __ediv(r >> 16, d + 1);
    if (t == 0 && r >= b) {
      t = 1;
    }
    q = q + t;
    r = r - t * b;
  } while (r >= b);
  __udivmod_rem = r;
  __ldivmod_iters = iters;
  return q;
}

unsigned __udiv32(unsigned a, unsigned b) {
  return __udivmod32(a, b);
}

unsigned __urem32(unsigned a, unsigned b) {
  unsigned q;
  q = __udivmod32(a, b);
  return __udivmod_rem;
}

/* The WCET-predictable baseline divider: restoring division, exactly 32
   iterations for every input. Remainder in __udiv_rest_rem. */
unsigned __udiv32_restoring(unsigned a, unsigned b) {
  unsigned q;
  unsigned r;
  int i;
  q = 0;
  r = 0;
  for (i = 0; i < 32; i = i + 1) {
    r = (r << 1) | ((a >> 31) & 1);
    a = a << 1;
    q = q << 1;
    if (r >= b) {
      r = r - b;
      q = q | 1;
    }
  }
  __udiv_rest_rem = r;
  return q;
}
|}

let float_source =
  {|
/* Simplified software binary32: flush-to-zero, truncating rounding, no
   NaN/infinity arithmetic. Exponents are biased by 127, mantissas carry the
   implicit leading one while unpacked. */

unsigned __f_norm_pack(unsigned s, int e, unsigned m) {
  while (m >= 0x1000000) {
    m = m >> 1;
    e = e + 1;
  }
  while (m != 0 && m < 0x800000) {
    m = m << 1;
    e = e - 1;
  }
  if (m == 0 || e <= 0) {
    return 0;
  }
  if (e >= 255) {
    return (s << 31) | 0x7F800000;
  }
  return (s << 31) | ((unsigned)e << 23) | (m & 0x7FFFFF);
}

unsigned __f_add(unsigned a, unsigned b) {
  unsigned sa; unsigned sb;
  int ea; int eb;
  unsigned ma; unsigned mb;
  unsigned s; int e; unsigned m;
  unsigned tmp;
  int shift;
  if ((a & 0x7F800000) == 0) { return b; }
  if ((b & 0x7F800000) == 0) { return a; }
  ea = (int)((a >> 23) & 0xFF);
  eb = (int)((b >> 23) & 0xFF);
  if (ea < eb || (ea == eb && (a & 0x7FFFFF) < (b & 0x7FFFFF))) {
    tmp = a; a = b; b = tmp;
    shift = ea; ea = eb; eb = shift;
  }
  sa = a >> 31;
  sb = b >> 31;
  ma = (a & 0x7FFFFF) | 0x800000;
  mb = (b & 0x7FFFFF) | 0x800000;
  shift = ea - eb;
  if (shift > 24) { return a; }
  mb = mb >> shift;
  if (sa == sb) {
    m = ma + mb;
    s = sa;
  } else {
    if (ma == mb) { return 0; }
    m = ma - mb;
    s = sa;
  }
  return __f_norm_pack(s, ea, m);
}

unsigned __f_sub(unsigned a, unsigned b) {
  return __f_add(a, b ^ 0x80000000);
}

unsigned __f_mul(unsigned a, unsigned b) {
  unsigned s; int e; unsigned m;
  if ((a & 0x7F800000) == 0 || (b & 0x7F800000) == 0) { return 0; }
  s = (a >> 31) ^ (b >> 31);
  e = (int)((a >> 23) & 0xFF) + (int)((b >> 23) & 0xFF) - 127;
  /* 16x16 -> 32 bit product of the mantissa tops; ~16-bit precision. */
  m = ((((a & 0x7FFFFF) | 0x800000) >> 8) * (((b & 0x7FFFFF) | 0x800000) >> 8)) >> 7;
  return __f_norm_pack(s, e, m);
}

unsigned __f_div(unsigned a, unsigned b) {
  unsigned s; int e; unsigned m;
  if ((a & 0x7F800000) == 0) { return 0; }
  if ((b & 0x7F800000) == 0) { return 0x7F800000; }
  s = (a >> 31) ^ (b >> 31);
  e = (int)((a >> 23) & 0xFF) - (int)((b >> 23) & 0xFF) + 127;
  m = ((((a & 0x7FFFFF) | 0x800000) << 7) / (((b & 0x7FFFFF) | 0x800000) >> 8)) << 8;
  return __f_norm_pack(s, e, m);
}

unsigned __f_lt(unsigned a, unsigned b) {
  unsigned sa; unsigned sb;
  if ((a & 0x7F800000) == 0) { a = 0; }
  if ((b & 0x7F800000) == 0) { b = 0; }
  if (a == b) { return 0; }
  sa = a >> 31;
  sb = b >> 31;
  if (sa != sb) { return sa; }
  if (sa == 0) { return a < b; }
  return b < a;
}

unsigned __f_le(unsigned a, unsigned b) {
  return __f_lt(b, a) ^ 1;
}

unsigned __f_eq(unsigned a, unsigned b) {
  if ((a & 0x7F800000) == 0) { a = 0; }
  if ((b & 0x7F800000) == 0) { b = 0; }
  return a == b;
}

unsigned __f_from_int(int i) {
  unsigned s; unsigned m;
  if (i == 0) { return 0; }
  if (i < 0) {
    s = 1;
    m = (unsigned)(-i);
  } else {
    s = 0;
    m = (unsigned)i;
  }
  return __f_norm_pack(s, 150, m);
}

int __f_to_int(unsigned f) {
  int e; unsigned m; int v;
  if ((f & 0x7F800000) == 0) { return 0; }
  e = (int)((f >> 23) & 0xFF);
  m = (f & 0x7FFFFF) | 0x800000;
  if (e < 127) { return 0; }
  if (e > 157) { return 0; } /* out of range: saturate to 0 by convention */
  if (e >= 150) {
    v = (int)(m << (e - 150));
  } else {
    v = (int)(m >> (150 - e));
  }
  if ((f >> 31) != 0) { return -v; }
  return v;
}
|}

let div_functions =
  [ "__ediv"; "__udivmod32"; "__udiv32"; "__urem32"; "__udiv32_restoring" ]

let float_functions =
  [
    "__f_norm_pack"; "__f_add"; "__f_sub"; "__f_mul"; "__f_div"; "__f_lt"; "__f_le";
    "__f_eq"; "__f_from_int"; "__f_to_int";
  ]
