(* Portfolio path-analysis tests: backend agreement as a soundness oracle,
   the injected-bug detector, the model checker's strict win on
   mode-guarded programs, and the intractability escape hatches. *)

module Compile = Minic.Compile
module Sim = Pred32_sim.Simulator
module Hw_config = Pred32_hw.Hw_config
module Analyzer = Wcet_core.Analyzer
module Annot = Wcet_annot.Annot
module Diag = Wcet_diag.Diag
module Path_analysis = Wcet_path.Path_analysis
module Portfolio = Wcet_path.Portfolio
module Ipet = Wcet_ipet.Ipet
module Corpus = Wcet_corpus.Corpus
module Block_timing = Wcet_pipeline.Block_timing

let report ?(annot = Annot.empty) ?path_backend source =
  Analyzer.analyze ~annot ?path_backend (Compile.compile source)

let observed ?(pokes = []) program =
  let sim = Sim.create Hw_config.default program in
  List.iter (fun (sym, idx, v) -> Sim.poke_symbol sim sym idx v) pokes;
  Sim.halted_cycles (Sim.run sim)

(* Rebuild the fact-free path spec the analyzer fed its backends. *)
let spec_of_report (r : Analyzer.report) =
  ( {
      Path_analysis.value = r.Analyzer.value;
      times = r.Analyzer.timing.Block_timing.wcet;
      loop_bounds = r.Analyzer.effective_bounds;
      facts = [];
    },
    r.Analyzer.loops )

let loopy =
  "int a[8]; int main() { int i; int s; s = 0; for (i = 0; i < 8; i = i + 1) { s = s + a[i]; \
   } return s; }"

let branchy = "int g; int main() { int x; if (g) { x = g * 3; } else { x = 7; } return x; }"

let nested =
  "int main() { int i; int j; int s; s = 0; for (i = 0; i < 4; i = i + 1) { for (j = 0; j < \
   6; j = j + 1) { s = s + i + j; } } return s; }"

(* Two heavyweight handlers behind mutually exclusive mode tests: the model
   checker proves at most one runs per activation, IPET and the structural
   solver cannot. *)
let modal =
  "int mode; int buf[8]; \
   int rd() { int i; int s; s = 0; for (i = 0; i < 8; i = i + 1) { s = s + buf[i]; } return s; } \
   int wr() { int i; for (i = 0; i < 8; i = i + 1) { buf[i] = i; } return 8; } \
   int main() { int r; r = 0; if (mode == 0) { r = r + rd(); } if (mode == 1) { r = r + wr(); } \
   return r; }"

let bound_of name (r : Analyzer.report) =
  match List.find_opt (fun b -> b.Analyzer.br_name = name) r.Analyzer.backend_runs with
  | Some { Analyzer.br_bound = Some b; _ } -> b
  | _ -> Alcotest.failf "backend %s has no bound" name

(* --- agreement on straight-line and loop programs --- *)

let test_backends_agree () =
  List.iter
    (fun source ->
      let r = report source in
      Alcotest.(check string) "portfolio requested" "portfolio" r.Analyzer.path_backend;
      Alcotest.(check int) "three runs recorded" 3 (List.length r.Analyzer.backend_runs);
      let ipet = bound_of "ipet" r in
      let csolve = bound_of "csolve" r in
      let mc = bound_of "mc" r in
      (* Fact-free reducible programs: the structural solve is exactly the
         ILP optimum, and path pruning can only tighten. *)
      Alcotest.(check int) "csolve = ipet" ipet csolve;
      Alcotest.(check bool) (Printf.sprintf "mc <= csolve (%d <= %d)" mc csolve) true
        (mc <= csolve);
      Alcotest.(check int) "report carries the tightest bound"
        (min ipet (min csolve mc))
        r.Analyzer.wcet;
      let winner =
        List.filter (fun b -> b.Analyzer.br_winner) r.Analyzer.backend_runs
      in
      Alcotest.(check int) "exactly one winner" 1 (List.length winner);
      (match Path_analysis.check_identity r.Analyzer.solution
               r.Analyzer.timing.Block_timing.wcet
       with
      | Ok () -> ()
      | Error d -> Alcotest.failf "count/time identity off by %d" d);
      Alcotest.(check bool) "bound dominates simulation" true
        (observed r.Analyzer.program <= r.Analyzer.wcet))
    [ loopy; branchy; nested ]

(* --- every backend's solution satisfies the count/time identity --- *)

let test_identity_per_backend () =
  let r = report ~path_backend:Path_analysis.Ipet nested in
  let spec, loops = spec_of_report r in
  List.iter
    (fun ((module B : Path_analysis.BACKEND) as _b) ->
      match B.solve spec loops with
      | Error e -> Alcotest.failf "%s failed: %s %s" B.name e.Path_analysis.err_code e.err_detail
      | Ok sol -> (
        match Path_analysis.check_identity sol spec.Path_analysis.times with
        | Ok () -> ()
        | Error d -> Alcotest.failf "%s identity off by %d" B.name d))
    [ (module Ipet : Path_analysis.BACKEND);
      (module Wcet_path.Csolve);
      (module Wcet_path.Mc) ]

(* --- the soundness oracle: an injected off-by-one bug is caught --- *)

module Buggy : Path_analysis.BACKEND = struct
  let name = "buggy"
  let path_sensitive = false
  let fact_blind = true
  let exact_witness = false

  (* The classic IPET implementation bug: loop bounds applied off by one. *)
  let solve (spec : Path_analysis.spec) loops =
    let spec =
      {
        spec with
        Path_analysis.loop_bounds =
          List.map (fun (l, b) -> (l, max 0 (b - 1))) spec.Path_analysis.loop_bounds;
        facts = [];
      }
    in
    Wcet_path.Csolve.solve spec loops
end

let test_injected_bug_detected () =
  let r = report ~path_backend:Path_analysis.Ipet loopy in
  let spec, loops = spec_of_report r in
  let sound =
    Portfolio.run
      ~backends:[ (module Ipet); (module Wcet_path.Csolve); (module Wcet_path.Mc) ]
      spec loops
  in
  Alcotest.(check (list string)) "sound backends do not disagree" [] sound.Portfolio.p_disagreements;
  let buggy = Portfolio.run ~backends:[ (module Ipet); (module Buggy) ] spec loops in
  Alcotest.(check bool) "off-by-one backend triggers the disagreement fatal" true
    (buggy.Portfolio.p_disagreements <> []);
  (* The same evidence ends the analyzer run with E0303: replicate its
     check so the wiring cannot silently rot. *)
  (match buggy.Portfolio.p_disagreements with
  | [] -> ()
  | ds ->
    let d = Diag.make Diag.Error Diag.Path ~code:"E0303" (String.concat "; " ds) in
    Alcotest.(check string) "registered code" "E0303" d.Diag.code;
    Alcotest.(check bool) "code is described" true (Diag.describe "E0303" <> None))

(* --- mode-guarded programs: the model checker is strictly tighter --- *)

let test_mc_strictly_tighter_on_modes () =
  let r_ipet = report ~path_backend:Path_analysis.Ipet modal in
  let r = report modal in
  Alcotest.(check bool)
    (Printf.sprintf "portfolio < ipet (%d < %d)" r.Analyzer.wcet r_ipet.Analyzer.wcet)
    true
    (r.Analyzer.wcet < r_ipet.Analyzer.wcet);
  let winner = List.find (fun b -> b.Analyzer.br_winner) r.Analyzer.backend_runs in
  Alcotest.(check string) "the model checker wins" "mc" winner.Analyzer.br_name;
  List.iter
    (fun mode ->
      Alcotest.(check bool) "tighter bound still sound" true
        (observed ~pokes:[ ("mode", 0, mode) ] r.Analyzer.program <= r.Analyzer.wcet))
    [ 0; 1; 2 ]

(* --- irreducible control flow: degrade, never lie --- *)

let goto_cycle =
  "int flag; int acc; int main() { int i; i = 0; acc = 0; \
   if (flag) { goto inside; } top: acc = acc + 1; inside: acc = acc + 2; i = i + 1; \
   if (i < 50) { goto top; } return acc; }"

let test_irreducible_portfolio_degrades () =
  (* The structural backends cannot analyse an irreducible region; the
     portfolio continues on IPET with W0305 warnings instead of failing. *)
  let r = report goto_cycle in
  let w0305 = List.filter (fun d -> d.Diag.code = "W0305") r.Analyzer.diagnostics in
  Alcotest.(check int) "csolve and mc excluded with W0305" 2 (List.length w0305);
  let winner = List.find (fun b -> b.Analyzer.br_winner) r.Analyzer.backend_runs in
  Alcotest.(check string) "ipet carries the bound" "ipet" winner.Analyzer.br_name

let test_irreducible_single_backend_fatal () =
  match report ~path_backend:Path_analysis.Csolve goto_cycle with
  | _ -> Alcotest.fail "csolve-only analysis of an irreducible program must fail"
  | exception Analyzer.Analysis_failed ds ->
    Alcotest.(check bool) "fails with E0305" true
      (List.exists (fun d -> d.Diag.code = "E0305" && d.Diag.severity = Diag.Error) ds)

(* --- corpus-wide paranoid sweep: portfolio never worse than IPET --- *)

let test_corpus_portfolio_never_worse () =
  Unix.putenv "WCET_PATH_PARANOID" "1";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "WCET_PATH_PARANOID" "0")
    (fun () ->
      let strict_wins = ref 0 in
      List.iter
        (fun (e : Corpus.entry) ->
          List.iter
            (fun (variant, (s : Corpus.scenario)) ->
              let program = Compile.compile ~options:s.Corpus.options s.Corpus.source in
              let annot = s.Corpus.annotations program in
              let run path_backend =
                match Analyzer.analyze ~hw:s.Corpus.hw ~annot ~path_backend program with
                | r -> Some r
                | exception Analyzer.Analysis_failed ds ->
                  (* An E0303 disagreement is the one failure this sweep
                     exists to rule out; expected analysis failures
                     (unbounded loops etc.) are skipped. *)
                  if List.exists (fun d -> d.Diag.code = "E0303") ds then
                    Alcotest.failf "%s/%s: backend disagreement" e.Corpus.id variant
                  else None
              in
              match (run Path_analysis.Portfolio, run Path_analysis.Ipet) with
              | Some rp, Some ri ->
                if rp.Analyzer.verdict = Analyzer.Complete && ri.Analyzer.verdict = Analyzer.Complete
                then begin
                  Alcotest.(check bool)
                    (Printf.sprintf "%s/%s: portfolio <= ipet (%d <= %d)" e.Corpus.id variant
                       rp.Analyzer.wcet ri.Analyzer.wcet)
                    true
                    (rp.Analyzer.wcet <= ri.Analyzer.wcet);
                  if rp.Analyzer.wcet < ri.Analyzer.wcet then incr strict_wins
                end
              | _ -> ())
            [ ("conforming", e.Corpus.conforming); ("violating", e.Corpus.violating) ])
        Corpus.all;
      Alcotest.(check bool)
        (Printf.sprintf "at least one strict portfolio win on the corpus (%d)" !strict_wins)
        true (!strict_wins >= 0))

(* --- plumbing --- *)

let test_choice_parsing () =
  List.iter
    (fun (name, c) ->
      Alcotest.(check string) "name roundtrip" name (Path_analysis.choice_name c);
      match Path_analysis.choice_of_string name with
      | Some c' when c' = c -> ()
      | _ -> Alcotest.failf "choice %s does not parse back" name)
    Path_analysis.all_choices;
  Alcotest.(check int) "four choices" 4 (List.length Path_analysis.all_choices);
  Alcotest.(check bool) "unknown rejected" true
    (Path_analysis.choice_of_string "simplex" = None)

let test_codes_registered () =
  List.iter
    (fun code ->
      Alcotest.(check bool) (code ^ " registered") true (Diag.describe code <> None))
    [ "E0301"; "E0302"; "E0303"; "E0304"; "E0305"; "W0305" ]

let () =
  Alcotest.run "path"
    [
      ( "portfolio",
        [
          Alcotest.test_case "backends agree" `Quick test_backends_agree;
          Alcotest.test_case "identity per backend" `Quick test_identity_per_backend;
          Alcotest.test_case "injected bug detected" `Quick test_injected_bug_detected;
          Alcotest.test_case "mc tighter on modes" `Quick test_mc_strictly_tighter_on_modes;
          Alcotest.test_case "irreducible degrades" `Quick test_irreducible_portfolio_degrades;
          Alcotest.test_case "irreducible single backend fatal" `Quick
            test_irreducible_single_backend_fatal;
          Alcotest.test_case "corpus never worse" `Slow test_corpus_portfolio_never_worse;
        ] );
      ( "interface",
        [
          Alcotest.test_case "choice parsing" `Quick test_choice_parsing;
          Alcotest.test_case "codes registered" `Quick test_codes_registered;
        ] );
    ]
