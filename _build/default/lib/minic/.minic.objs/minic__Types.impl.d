lib/minic/types.ml: Format List
