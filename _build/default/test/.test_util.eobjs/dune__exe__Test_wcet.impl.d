test/test_wcet.ml: Alcotest Astring List Minic Pred32_hw Pred32_sim Printf Wcet_annot Wcet_core
