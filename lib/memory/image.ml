type t = { map : Memory_map.t; store : (string, Bytes.t) Hashtbl.t }

exception Bus_error of int
exception Write_to_rom of int

let create map = { map; store = Hashtbl.create 7 }
let memory_map t = t.map

let backing t (r : Region.t) =
  match Hashtbl.find_opt t.store r.name with
  | Some b -> b
  | None ->
    let b = Bytes.make r.size '\000' in
    Hashtbl.add t.store r.name b;
    b

let locate t addr =
  if addr land 3 <> 0 then raise (Bus_error addr);
  match Memory_map.find t.map addr with
  | None -> raise (Bus_error addr)
  | Some r -> (r, addr - r.base)

let read_word t addr =
  let r, off = locate t addr in
  let b = backing t r in
  Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF

let write_raw t addr v =
  let r, off = locate t addr in
  let b = backing t r in
  Bytes.set_int32_le b off (Int32.of_int v);
  r

let write_word t addr v =
  if addr land 3 <> 0 then raise (Bus_error addr);
  match Memory_map.find t.map addr with
  | None -> raise (Bus_error addr)
  | Some r ->
    if not r.writable then raise (Write_to_rom addr);
    ignore (write_raw t addr v)

let load_words t ~base words =
  Array.iteri (fun i w -> ignore (write_raw t (base + (4 * i)) w)) words

let contents t =
  Hashtbl.fold (fun name b acc -> (name, Bytes.to_string b) :: acc) t.store []
  |> List.sort compare

let copy t =
  let store = Hashtbl.create 7 in
  Hashtbl.iter (fun k v -> Hashtbl.add store k (Bytes.copy v)) t.store;
  { map = t.map; store }
