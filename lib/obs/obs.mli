(** Master switch of the observability layer.

    Off by default. While disabled, every recording entry point in
    {!Metrics} and {!Trace} is a single atomic load plus a branch —
    allocation-free, lock-free — so instrumented hot paths keep their
    uninstrumented performance. Metric {e registration} (which happens at
    module-initialization time) is unaffected by the switch. *)

val on : unit -> bool
val enable : unit -> unit
val disable : unit -> unit
