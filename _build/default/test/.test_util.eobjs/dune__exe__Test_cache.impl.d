test/test_cache.ml: Alcotest Pred32_hw Wcet_cache Wcet_util
