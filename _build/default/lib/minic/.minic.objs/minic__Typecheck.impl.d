lib/minic/typecheck.ml: Ast Format Hashtbl Int32 List Option Tast Types
