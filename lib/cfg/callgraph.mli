(** Call-graph condensation: Tarjan SCCs over the supergraph, at two
    granularities.

    {!condense} is the generic layer: it condenses any integer node graph
    into a {!Wcet_util.Fixpoint.plan} — components in topological order,
    grouped into dependency levels, with the global RPO index as worklist
    priority — which [Fixpoint.Make.solve_plan] schedules bottom-up, fanning
    independent components across the domain pool.

    {!of_supergraph} is the function-level view used for reporting, metrics
    and slice bookkeeping: which functions form recursive groups (one SCC),
    in callee-first order, and which program functions the supergraph never
    expanded. *)

(** [condense ~num_nodes ~entries ~succs] condenses the graph into SCCs.
    Every node belongs to exactly one component (nodes unreachable from
    [entries] included — they are never activated by the scheduler).
    Component ids are topological: [plan_comp_of.(u) < plan_comp_of.(v)]
    for every edge [u -> v] crossing components. Members of a component are
    sorted by priority; levels are a longest-path layering of the
    condensation, so the components of one level share no edge. *)
val condense :
  num_nodes:int -> entries:int list -> succs:(int -> int list) -> Wcet_util.Fixpoint.plan

(** Function-level call graph of a supergraph. *)
type t = {
  sccs : string list array;
      (** one entry per SCC, callees before callers (bottom-up); members
          sorted by name *)
  recursive : bool array;  (** SCC has >1 member or a self call *)
  unreachable : string list;
      (** program functions the supergraph never expanded *)
}

(** Built from the resolved call edges ([Ecall]) of the supergraph, so
    indirect calls count once resolved. *)
val of_supergraph : Supergraph.t -> t

val scc_count : t -> int

(** SCC index of a function, [None] if it was never expanded. *)
val scc_of : t -> string -> int option
