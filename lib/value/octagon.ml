(* Octagon abstract domain: conjunctions of constraints of the form
   [±x ±y <= c] over a fixed set of integer variables (registers plus
   tracked stack/global slots), represented as a difference-bound matrix
   in Mine's encoding.

   Each octagon variable [v] contributes two DBM vertices: [2v] standing
   for [+x_v] and [2v+1] for [-x_v]. Cell [m.(i).(j)] is an upper bound on
   [V_j - V_i] (max_int = unconstrained), so

     x_u - x_v <= c   lives at  m.(2v).(2u)
     x_u + x_v <= c   lives at  m.(2v+1).(2u)
    -x_u - x_v <= c   lives at  m.(2v).(2u+1)
         x_v <= c     lives at  m.(2v+1).(2v)  as  2c
        -x_v <= c     lives at  m.(2v).(2v+1)  as  2c

   with the coherence invariant [m.(i).(j) = m.(bar j).(bar i)] where
   [bar] flips the low bit; every write goes to both cells.

   Soundness under 32-bit wraparound: a variable participates in
   constraints only while its companion interval proves its concrete value
   lies in [0, 2^31) (the "safe" range, where unsigned machine order,
   signed order and mathematical order on the representatives coincide and
   the tracked arithmetic cannot wrap). The transfer functions in
   {!Analysis} forget a variable the moment that proof lapses, so every
   recorded constraint is a true statement about mathematical integers.

   Closure discipline: strong closure is a precision device, never a
   soundness requirement — every stored constraint is individually true,
   so reading an unclosed matrix only loses precision. We therefore keep
   matrices closed incrementally where cheap (constraint addition,
   assignment) and accept temporary unclosedness after widening (closing a
   widened iterate would break termination). *)

let inf = max_int

type t = {
  dim : int;  (* octagon variables; matrix is 2*dim square *)
  m : int array array option;  (* None = bottom *)
  thr : int array;  (* widening thresholds, sorted ascending *)
}

let bar i = i lxor 1

(* Saturating addition of path weights. *)
let ( +! ) a b = if a = inf || b = inf then inf else a + b

(* Round down to an even value (unary cells encode 2c). *)
let floor_even c = if c = inf then inf else c - (c land 1)

let no_thresholds = [||]

let top ?(thresholds = no_thresholds) dim =
  let n = 2 * dim in
  let m = Array.init n (fun i -> Array.init n (fun j -> if i = j then 0 else inf)) in
  { dim; m = Some m; thr = thresholds }

let bottom ?(thresholds = no_thresholds) dim = { dim; m = None; thr = thresholds }
let is_bot t = t.m = None
let dim t = t.dim

let copy_matrix m = Array.map Array.copy m

(* ---- consistency ---------------------------------------------------- *)

(* A DBM is inconsistent when some cycle has negative weight; after the
   incremental updates below it suffices to look at the diagonal and the
   unary pairs. *)
let consistent m =
  let n = Array.length m in
  let ok = ref true in
  for i = 0 to n - 1 do
    if m.(i).(i) < 0 then ok := false;
    if m.(i).(bar i) +! m.(bar i).(i) < 0 then ok := false
  done;
  !ok

let normalize t =
  match t.m with
  | None -> t
  | Some m -> if consistent m then t else { t with m = None }

(* ---- incremental closure -------------------------------------------- *)

(* Tighten all paths through the new constraint [V_b - V_a <= c] (written
   at m.(a).(b)) and its coherent mirror [m.(bar b).(bar a)], then
   strengthen via the unary cells. Mine's incremental closure: a shortest
   path in the updated graph uses the new edge at most twice (once in each
   orientation; a third use would close a negative cycle), so five
   candidates per cell, all evaluated against the pre-insertion matrix,
   restore strong closure in O(n^2). Mutates [m]. *)
let close_after_add m a b c =
  let n = Array.length m in
  if c < m.(a).(b) then begin
    let a' = bar a and b' = bar b in
    (* Snapshot the rows/columns the candidates read so every candidate
       sees the old (closed) matrix regardless of update order. *)
    let col_a = Array.init n (fun i -> m.(i).(a)) in
    let col_b' = Array.init n (fun i -> m.(i).(b')) in
    let row_b = Array.copy m.(b) in
    let row_a' = Array.copy m.(a') in
    let w_bb' = row_b.(b') and w_a'a = row_a'.(a) in
    for i = 0 to n - 1 do
      let ia = col_a.(i) and ib' = col_b'.(i) in
      if ia < inf || ib' < inf then
        for j = 0 to n - 1 do
          let best = ref m.(i).(j) in
          let cand v = if v < !best then best := v in
          (* i -> a -> b -> j *)
          cand (ia +! c +! row_b.(j));
          (* i -> bar b -> bar a -> j (the mirror orientation) *)
          cand (ib' +! c +! row_a'.(j));
          (* i -> a -> b ->* bar b -> bar a -> j (edge used twice) *)
          cand (ia +! c +! w_bb' +! c +! row_a'.(j));
          (* i -> bar b -> bar a ->* a -> b -> j *)
          cand (ib' +! c +! w_a'a +! c +! row_b.(j));
          if !best < m.(i).(j) then m.(i).(j) <- !best
        done
    done;
    (* Unary cells encode 2c: floor to even, then strengthen by combining
       the two unary half-bounds. *)
    for i = 0 to n - 1 do
      m.(i).(bar i) <- floor_even m.(i).(bar i)
    done;
    for i = 0 to n - 1 do
      let ui = floor_even m.(i).(bar i) / 2 in
      if ui < inf / 4 then
        for j = 0 to n - 1 do
          let uj = floor_even m.(bar j).(j) / 2 in
          if uj < inf / 4 && ui + uj < m.(i).(j) then m.(i).(j) <- ui + uj
        done
    done
  end

(* ---- constraint entry points ---------------------------------------- *)

(* All take and return pure values; [None]-matrix (bottom) passes through. *)

let with_matrix t f =
  match t.m with
  | None -> t
  | Some m ->
    let m = copy_matrix m in
    f m;
    normalize { t with m = Some m }

(* x_u - x_v <= c *)
let add_diff t ~u ~v c =
  if u = v then if c < 0 then { t with m = None } else t
  else with_matrix t (fun m -> close_after_add m (2 * v) (2 * u) c)

(* x_u + x_v <= c *)
let add_sum_ub t ~u ~v c =
  if u = v then
    with_matrix t (fun m -> close_after_add m ((2 * u) + 1) (2 * u) (floor_even c))
  else with_matrix t (fun m -> close_after_add m ((2 * v) + 1) (2 * u) c)

(* -x_u - x_v <= c, i.e. x_u + x_v >= -c *)
let add_sum_lb t ~u ~v c =
  if u = v then
    with_matrix t (fun m -> close_after_add m (2 * u) ((2 * u) + 1) (floor_even c))
  else with_matrix t (fun m -> close_after_add m (2 * v) ((2 * u) + 1) c)

let add_ub t v c = add_sum_ub t ~u:v ~v (2 * c)
let add_lb t v c = add_sum_lb t ~u:v ~v (-2 * c)

let set_interval_constraints t v (lo, hi) = add_lb (add_ub t v hi) v lo

(* ---- forget / assignment -------------------------------------------- *)

(* Drop every constraint mentioning [v]. On a closed matrix the result is
   closed (removing a variable cannot invalidate closure elsewhere). *)
let forget t v =
  match t.m with
  | None -> t
  | Some m ->
    let n = Array.length m in
    let m = copy_matrix m in
    let p = 2 * v and q = (2 * v) + 1 in
    for i = 0 to n - 1 do
      m.(i).(p) <- (if i = p then 0 else inf);
      m.(i).(q) <- (if i = q then 0 else inf);
      m.(p).(i) <- (if i = p then 0 else inf);
      m.(q).(i) <- (if i = q then 0 else inf)
    done;
    { t with m = Some m }

(* x_v := x_v + c: an exact shift of the two DBM vertices of [v]. The
   caller guarantees no machine wraparound. Preserves closure. *)
let shift t v c =
  with_matrix t (fun m ->
      let n = Array.length m in
      let p = 2 * v and q = (2 * v) + 1 in
      for i = 0 to n - 1 do
        if i <> p && i <> q then begin
          (* V_p grows by c: bounds on V_p - V_i grow, on V_i - V_p shrink. *)
          m.(i).(p) <- m.(i).(p) +! c;
          m.(p).(i) <- m.(p).(i) +! -c;
          (* V_q = -x_v shrinks by c. *)
          m.(i).(q) <- m.(i).(q) +! -c;
          m.(q).(i) <- m.(q).(i) +! c
        end
      done;
      m.(q).(p) <- m.(q).(p) +! (2 * c);
      m.(p).(q) <- m.(p).(q) +! (-2 * c))

(* x_v := -x_v + c (used for  x := c - x ): swap the vertices, then shift. *)
let negate_shift t v c =
  let t =
    with_matrix t (fun m ->
        let n = Array.length m in
        let p = 2 * v and q = (2 * v) + 1 in
        for i = 0 to n - 1 do
          let tmp = m.(i).(p) in
          m.(i).(p) <- m.(i).(q);
          m.(i).(q) <- tmp
        done;
        for i = 0 to n - 1 do
          let tmp = m.(p).(i) in
          m.(p).(i) <- m.(q).(i);
          m.(q).(i) <- tmp
        done)
  in
  shift t v c

(* x_d := x_s + c  (d <> s handled by forget+add; d = s by shift). *)
let assign_var_plus t ~dst ~src c =
  if dst = src then shift t dst c
  else
    let t = forget t dst in
    let t = add_diff t ~u:dst ~v:src c in
    add_diff t ~u:src ~v:dst (-c)

(* x_d := c - x_s. *)
let assign_const_minus t ~dst ~src c =
  if dst = src then negate_shift t dst c
  else
    let t = forget t dst in
    let t = add_sum_ub t ~u:dst ~v:src c in
    add_sum_lb t ~u:dst ~v:src (-c)

let assign_interval t dst (lo, hi) = set_interval_constraints (forget t dst) dst (lo, hi)

(* ---- queries --------------------------------------------------------- *)

(* Bounds of x_v as (lo option, hi option); None = unconstrained on that
   side. On bottom both bounds collapse to the empty (Some 0, Some (-1)). *)
let var_bounds t v =
  match t.m with
  | None -> (Some 0, Some (-1))
  | Some m ->
    let p = 2 * v and q = (2 * v) + 1 in
    let hi = m.(q).(p) and lo = m.(p).(q) in
    ( (if lo = inf then None else Some (-(floor_even lo / 2))),
      if hi = inf then None else Some (floor_even hi / 2) )

(* Bounds of x_u - x_v: (lo option, hi option). *)
let diff_bounds t ~u ~v =
  match t.m with
  | None -> (Some 0, Some (-1))
  | Some m ->
    let ub = m.(2 * v).(2 * u) and nlb = m.(2 * u).(2 * v) in
    ( (if nlb = inf then None else Some (-nlb)),
      if ub = inf then None else Some ub )

(* ---- lattice --------------------------------------------------------- *)

let leq a b =
  match (a.m, b.m) with
  | None, _ -> true
  | Some _, None -> false
  | Some ma, Some mb ->
    let n = Array.length ma in
    let ok = ref true in
    (try
       for i = 0 to n - 1 do
         for j = 0 to n - 1 do
           if ma.(i).(j) > mb.(i).(j) then begin
             ok := false;
             raise Exit
           end
         done
       done
     with Exit -> ());
    !ok

let equal a b =
  match (a.m, b.m) with
  | None, None -> true
  | Some ma, Some mb -> ma = mb
  | _ -> false

(* Cell-wise max. The join of two strongly closed octagons is strongly
   closed; on partially closed inputs it is merely a sound upper bound. *)
let join a b =
  match (a.m, b.m) with
  | None, _ -> b
  | _, None -> a
  | Some ma, Some mb ->
    let n = Array.length ma in
    let m = Array.init n (fun i -> Array.init n (fun j -> max ma.(i).(j) mb.(i).(j))) in
    { a with m = Some m }

(* Cell-wise meet (no re-closure: precision-only). *)
let meet a b =
  match (a.m, b.m) with
  | None, _ -> a
  | _, None -> b
  | Some ma, Some mb ->
    let n = Array.length ma in
    let m = Array.init n (fun i -> Array.init n (fun j -> min ma.(i).(j) mb.(i).(j))) in
    normalize { a with m = Some m }

(* Threshold widening: a cell that grew jumps to the smallest threshold
   that still covers it (infinity when none does); stable cells keep their
   old bound. Each cell ascends a finite chain, so widening sequences
   terminate. The result is deliberately not re-closed. *)
let widen a b =
  match (a.m, b.m) with
  | None, _ -> b
  | _, None -> a
  | Some ma, Some mb ->
    let thr = a.thr in
    let jump c =
      if c = inf then inf
      else begin
        let k = ref 0 and n = Array.length thr in
        while !k < n && thr.(!k) < c do incr k done;
        if !k < n then thr.(!k) else inf
      end
    in
    let n = Array.length ma in
    let m =
      Array.init n (fun i ->
          Array.init n (fun j ->
              let x = ma.(i).(j) and y = mb.(i).(j) in
              if y <= x then x else jump y))
    in
    { a with m = Some m }

let pp ppf t =
  match t.m with
  | None -> Format.fprintf ppf "bottom"
  | Some m ->
    let n = Array.length m in
    let printed = ref 0 in
    Format.fprintf ppf "@[<v>";
    for v = 0 to (n / 2) - 1 do
      match var_bounds t v with
      | None, None -> ()
      | lo, hi ->
        let side = function Some c -> string_of_int c | None -> "?" in
        Format.fprintf ppf "x%d in [%s,%s]@," v (side lo) (side hi);
        incr printed
    done;
    for u = 0 to (n / 2) - 1 do
      for v = 0 to (n / 2) - 1 do
        if u <> v then begin
          let c = m.(2 * v).(2 * u) in
          if c < inf then begin
            Format.fprintf ppf "x%d - x%d <= %d@," u v c;
            incr printed
          end
        end
      done
    done;
    if !printed = 0 then Format.fprintf ppf "top";
    Format.fprintf ppf "@]"

(* Full strong closure (Floyd-Warshall + strengthening), exposed for the
   property tests; the incremental operations above keep matrices closed
   in normal operation. *)
let close t =
  match t.m with
  | None -> t
  | Some m ->
    let m = copy_matrix m in
    let n = Array.length m in
    for k = 0 to n - 1 do
      for i = 0 to n - 1 do
        let ik = m.(i).(k) in
        if ik < inf then
          for j = 0 to n - 1 do
            let via = ik +! m.(k).(j) in
            if via < m.(i).(j) then m.(i).(j) <- via
          done
      done
    done;
    for i = 0 to n - 1 do
      m.(i).(bar i) <- floor_even m.(i).(bar i)
    done;
    for i = 0 to n - 1 do
      let ui = floor_even m.(i).(bar i) / 2 in
      if ui < inf / 4 then
        for j = 0 to n - 1 do
          let uj = floor_even m.(bar j).(j) / 2 in
          if uj < inf / 4 && ui + uj < m.(i).(j) then m.(i).(j) <- ui + uj
        done
    done;
    normalize { t with m = Some m }
