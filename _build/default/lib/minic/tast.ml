(* Typed intermediate representation, produced by [Typecheck] and consumed
   by [Codegen].

   Variables are resolved to frame slots (word offsets into the function's
   locals area; parameters occupy the first slots) or to global symbols.
   Implicit conversions are explicit casts. Division carries its own node so
   the code generator can choose between the hardware divider and the
   software-arithmetic routine (the paper's Section 4.4 scenario). *)

type op =
  | Oadd | Osub | Omul
  | Odiv | Orem  (* unsigned semantics; hardware or software per codegen *)
  | Oband | Obor | Obxor
  | Oshl
  | Oshr  (* logical shift for unsigned *)
  | Osar  (* arithmetic shift for int *)
  | Olt of bool | Ole of bool | Ogt of bool | Oge of bool  (* bool = signed *)
  | Oeq | One
  | Ofadd | Ofsub | Ofmul | Ofdiv
  | Oflt | Ofle | Ofgt | Ofge | Ofeq | Ofne

type texpr = { ty : Types.t; desc : desc }

and desc =
  | Tconst of int  (* 32-bit word, including float bit patterns *)
  | Tlocal of int  (* read scalar local slot *)
  | Tglobal of string
  | Tlocal_addr of int
  | Tglobal_addr of string
  | Tfun_addr of string
  | Tload of texpr  (* load through computed address *)
  | Tassign_local of int * texpr
  | Tassign_global of string * texpr
  | Tstore of texpr * texpr  (* address, value *)
  | Tneg of texpr
  | Tfneg of texpr
  | Tlnot of texpr
  | Tbnot of texpr
  | Tbinop of op * texpr * texpr
  | Tland of texpr * texpr  (* short-circuit *)
  | Tlor of texpr * texpr
  | Tcall of string * texpr list * texpr list  (* callee, named args, variadic extras *)
  | Tcall_ptr of texpr * texpr list
  | Tva_arg of texpr
  | Tmalloc of texpr  (* byte count *)
  | Tsetjmp of texpr  (* jmp_buf address *)
  | Tlongjmp of texpr * texpr
  | Titof of texpr  (* int -> float conversion *)
  | Tftoi of texpr
  | Tcond of texpr * texpr * texpr  (* ternary ?: *)

type tstmt =
  | Sexpr of texpr
  | Sif of texpr * tstmt list * tstmt list
  | Swhile of texpr * tstmt list
  | Sdo_while of tstmt list * texpr
  | Sfor of tstmt list * texpr option * texpr option * tstmt list
      (* init statements, condition, step expression, body *)
  | Sreturn of texpr option
  | Sbreak
  | Scontinue
  | Sgoto of string
  | Slabel of string
  | Sblock of tstmt list

type tfunc = {
  name : string;
  params : Types.t list;
  varargs : bool;
  ret : Types.t;
  frame_words : int;  (* parameters + locals, in words *)
  body : tstmt list;
}

type tglobal = {
  gname : string;
  gty : Types.t;
  placement : Ast.placement;
  init : int list option;
  size_words : int;
}

type tprogram = { globals : tglobal list; funcs : tfunc list }

(* Functions called directly anywhere in the program (used to pull in the
   software-arithmetic runtime on demand). *)
let rec expr_calls acc e =
  match e.desc with
  | Tconst _ | Tlocal _ | Tglobal _ | Tlocal_addr _ | Tglobal_addr _ | Tfun_addr _ -> acc
  | Tload a | Tneg a | Tfneg a | Tlnot a | Tbnot a | Tva_arg a | Tmalloc a | Tsetjmp a
  | Titof a | Tftoi a
  | Tassign_local (_, a)
  | Tassign_global (_, a) ->
    expr_calls acc a
  | Tstore (a, b) | Tbinop (_, a, b) | Tland (a, b) | Tlor (a, b) | Tlongjmp (a, b) ->
    expr_calls (expr_calls acc a) b
  | Tcond (a, b, c) -> expr_calls (expr_calls (expr_calls acc a) b) c
  | Tcall (f, args, extras) ->
    List.fold_left expr_calls (f :: acc) (args @ extras)
  | Tcall_ptr (f, args) -> List.fold_left expr_calls acc (f :: args)

let rec stmt_calls acc s =
  match s with
  | Sexpr e -> expr_calls acc e
  | Sif (c, a, b) -> List.fold_left stmt_calls (List.fold_left stmt_calls (expr_calls acc c) a) b
  | Swhile (c, body) -> List.fold_left stmt_calls (expr_calls acc c) body
  | Sdo_while (body, c) -> expr_calls (List.fold_left stmt_calls acc body) c
  | Sfor (init, c, step, body) ->
    let acc = List.fold_left stmt_calls acc init in
    let acc = Option.fold ~none:acc ~some:(expr_calls acc) c in
    let acc = Option.fold ~none:acc ~some:(expr_calls acc) step in
    List.fold_left stmt_calls acc body
  | Sreturn (Some e) -> expr_calls acc e
  | Sreturn None | Sbreak | Scontinue | Sgoto _ | Slabel _ -> acc
  | Sblock body -> List.fold_left stmt_calls acc body

let func_calls f = List.fold_left stmt_calls [] f.body

(* Apply [f] to every expression node (pre-order) of the program. *)
let rec iter_expr f e =
  f e;
  match e.desc with
  | Tconst _ | Tlocal _ | Tglobal _ | Tlocal_addr _ | Tglobal_addr _ | Tfun_addr _ -> ()
  | Tload a | Tneg a | Tfneg a | Tlnot a | Tbnot a | Tva_arg a | Tmalloc a | Tsetjmp a
  | Titof a | Tftoi a
  | Tassign_local (_, a)
  | Tassign_global (_, a) ->
    iter_expr f a
  | Tstore (a, b) | Tbinop (_, a, b) | Tland (a, b) | Tlor (a, b) | Tlongjmp (a, b) ->
    iter_expr f a;
    iter_expr f b
  | Tcond (a, b, c) ->
    iter_expr f a;
    iter_expr f b;
    iter_expr f c
  | Tcall (_, args, extras) -> List.iter (iter_expr f) (args @ extras)
  | Tcall_ptr (g, args) -> List.iter (iter_expr f) (g :: args)

let rec iter_stmt f s =
  match s with
  | Sexpr e -> iter_expr f e
  | Sif (c, a, b) ->
    iter_expr f c;
    List.iter (iter_stmt f) a;
    List.iter (iter_stmt f) b
  | Swhile (c, body) ->
    iter_expr f c;
    List.iter (iter_stmt f) body
  | Sdo_while (body, c) ->
    List.iter (iter_stmt f) body;
    iter_expr f c
  | Sfor (init, c, step, body) ->
    List.iter (iter_stmt f) init;
    Option.iter (iter_expr f) c;
    Option.iter (iter_expr f) step;
    List.iter (iter_stmt f) body
  | Sreturn (Some e) -> iter_expr f e
  | Sreturn None | Sbreak | Scontinue | Sgoto _ | Slabel _ -> ()
  | Sblock body -> List.iter (iter_stmt f) body

let iter_program_exprs f p =
  List.iter (fun fn -> List.iter (iter_stmt f) fn.body) p.funcs
