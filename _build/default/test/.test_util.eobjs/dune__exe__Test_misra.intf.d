test/test_misra.mli:
