test/test_fuzz_compiler.mli:
