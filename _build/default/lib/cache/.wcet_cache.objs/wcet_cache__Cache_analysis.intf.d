lib/cache/cache_analysis.mli: Format Pred32_hw Pred32_memory Wcet_value
