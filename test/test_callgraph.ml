(* Tests for the call-graph condensation (lib/cfg/callgraph) and the
   summary-based scheduled analyses built on it: SCC structure, slice
   bookkeeping, and the corpus-wide property that the summary engine and
   the whole-program engine agree on every bound and verdict. *)

module Compile = Minic.Compile
module Analyzer = Wcet_core.Analyzer
module Report_cache = Wcet_core.Report_cache
module Callgraph = Wcet_cfg.Callgraph
module Annot = Wcet_annot.Annot
module Corpus = Wcet_corpus.Corpus
module Store = Wcet_util.Store

let annot_exn text =
  match Annot.parse text with
  | Ok a -> a
  | Error msg -> Alcotest.failf "bad annotation: %s" msg

let graph_of ?annot source =
  (Analyzer.analyze ?annot (Compile.compile source)).Analyzer.graph

let scc_with cg f =
  match Callgraph.scc_of cg f with
  | Some i -> i
  | None -> Alcotest.failf "function %s not in any SCC" f

(* --- SCC structure --- *)

let test_mutual_recursion_one_scc () =
  (* f -> g -> h -> f: one three-member SCC, marked recursive; main in its
     own non-recursive SCC, after (above) the cycle. *)
  let source =
    "int f(int n) { if (n < 1) { return 0; } return g(n - 1); } \
     int g(int n) { return h(n); } \
     int h(int n) { return f(n); } \
     int main() { return f(6); }"
  in
  let cg =
    Callgraph.of_supergraph
      (graph_of
         ~annot:(annot_exn "recursion f depth 7\nrecursion g depth 7\nrecursion h depth 7")
         source)
  in
  let sf = scc_with cg "f" in
  Alcotest.(check int) "f and g share an SCC" sf (scc_with cg "g");
  Alcotest.(check int) "f and h share an SCC" sf (scc_with cg "h");
  Alcotest.(check (list string)) "members sorted" [ "f"; "g"; "h" ] cg.Callgraph.sccs.(sf);
  Alcotest.(check bool) "cycle is recursive" true cg.Callgraph.recursive.(sf);
  let sm = scc_with cg "main" in
  Alcotest.(check bool) "main is its own SCC" true (sm <> sf);
  Alcotest.(check bool) "main is not recursive" false cg.Callgraph.recursive.(sm);
  Alcotest.(check bool) "callee SCC first (bottom-up order)" true (sf < sm)

let test_self_recursion_marked () =
  let source =
    "int fact(int n) { if (n < 2) { return 1; } return n * fact(n - 1); } \
     int main() { return fact(6); }"
  in
  let cg = Callgraph.of_supergraph (graph_of ~annot:(annot_exn "recursion fact depth 8") source) in
  Alcotest.(check bool) "single-member self-call SCC is recursive" true
    cg.Callgraph.recursive.(scc_with cg "fact");
  Alcotest.(check bool) "main is not" false cg.Callgraph.recursive.(scc_with cg "main")

let diamond_source =
  "int shared(int x) { int i; int s; s = x; for (i = 0; i < 4; i = i + 1) { s = s + i; } \
   return s; }\n\
   int helper_a(int x) { return shared(x + 1); }\n\
   int helper_b(int x) { return shared(x + 2); }\n\
   int main() { return helper_a(1) + helper_b(2); }\n"

let test_diamond_sccs () =
  (* main -> {helper_a, helper_b} -> shared: four singleton SCCs, shared
     exactly once (not once per call path), callee-first order. *)
  let cg = Callgraph.of_supergraph (graph_of diamond_source) in
  Alcotest.(check int) "four SCCs" 4 (Callgraph.scc_count cg);
  Alcotest.(check (list string)) "no function duplicated"
    [ "helper_a"; "helper_b"; "main"; "shared" ]
    (List.sort compare (Array.to_list cg.Callgraph.sccs |> List.concat));
  Alcotest.(check bool) "shared before its callers" true
    (scc_with cg "shared" < scc_with cg "helper_a"
    && scc_with cg "shared" < scc_with cg "helper_b");
  Alcotest.(check bool) "callers before main" true
    (scc_with cg "helper_a" < scc_with cg "main"
    && scc_with cg "helper_b" < scc_with cg "main");
  Alcotest.(check bool) "nothing recursive" true
    (Array.for_all not cg.Callgraph.recursive);
  Alcotest.(check (list string)) "nothing unreachable" [] cg.Callgraph.unreachable

let test_unreachable_function_skipped () =
  (* orphan is never called: the supergraph does not expand it and the
     call graph reports it, so no summary work (or slice entry) is spent
     on it. *)
  let source =
    "int orphan(int x) { return x * 3; }\n\
     int used(int x) { return x + 1; }\n\
     int main() { return used(41); }\n"
  in
  let cg = Callgraph.of_supergraph (graph_of source) in
  Alcotest.(check (list string)) "orphan reported unreachable" [ "orphan" ]
    cg.Callgraph.unreachable;
  Alcotest.(check (option int)) "orphan has no SCC" None (Callgraph.scc_of cg "orphan");
  Alcotest.(check int) "two SCCs (used, main)" 2 (Callgraph.scc_count cg)

(* --- slice bookkeeping: one store entry per function --- *)

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "wcet_test_callgraph.%d.%d" (Unix.getpid ()) !counter)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_cache f =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () ->
      Report_cache.disable ();
      ignore (Report_cache.drain_diags ());
      Report_cache.reset_session ();
      rm_rf dir)
    (fun () ->
      if not (Report_cache.set_dir dir) then Alcotest.fail "set_dir refused a fresh temp dir";
      Report_cache.reset_session ();
      f dir)

let test_diamond_writes_one_slice_per_function () =
  (* The diamond's shared callee gets ONE slice entry, not one per caller
     path: summaries are stored per function, contexts are rows inside. *)
  with_cache (fun dir ->
      ignore (Analyzer.analyze (Compile.compile diamond_source));
      match Store.open_store dir with
      | Error msg -> Alcotest.failf "open_store: %s" msg
      | Ok s ->
        let st = Store.stats s in
        Alcotest.(check (option int)) "one func entry per function" (Some 4)
          (List.assoc_opt "func" st.Store.by_kind))

(* --- corpus-wide engine equivalence --- *)

let test_corpus_engines_agree () =
  (* Both engines must produce the same bounds and verdict on every corpus
     scenario — the bit-identity property of the component schedule, at
     the level users observe. Runs uncached so the summary engine actually
     solves (no slices to apply). *)
  Report_cache.disable ();
  List.iter
    (fun (e : Corpus.entry) ->
      List.iter
        (fun (variant, (s : Corpus.scenario)) ->
          let program = Compile.compile ~options:s.Corpus.options s.Corpus.source in
          let annot = s.Corpus.annotations program in
          let run engine =
            match Analyzer.analyze ~hw:s.Corpus.hw ~annot ~engine program with
            | r -> Ok (r.Analyzer.wcet, r.Analyzer.bcet, r.Analyzer.verdict)
            | exception Analyzer.Analysis_failed ds ->
              Error (List.map (fun (d : Wcet_diag.Diag.t) -> d.Wcet_diag.Diag.code) ds)
          in
          let summary = run Analyzer.Summary in
          let whole = run Analyzer.Whole_program in
          if summary <> whole then
            Alcotest.failf "%s/%s: engines disagree" e.Corpus.id variant)
        [ ("conforming", e.Corpus.conforming); ("violating", e.Corpus.violating) ])
    Corpus.all

let () =
  Alcotest.run "callgraph"
    [
      ( "sccs",
        [
          Alcotest.test_case "mutual recursion is one SCC" `Quick
            test_mutual_recursion_one_scc;
          Alcotest.test_case "self recursion marked" `Quick test_self_recursion_marked;
          Alcotest.test_case "diamond condensation" `Quick test_diamond_sccs;
          Alcotest.test_case "unreachable function skipped" `Quick
            test_unreachable_function_skipped;
        ] );
      ( "slices",
        [
          Alcotest.test_case "one slice entry per function" `Quick
            test_diamond_writes_one_slice_per_function;
        ] );
      ( "engine equivalence",
        [ Alcotest.test_case "corpus bounds identical" `Slow test_corpus_engines_agree ] );
    ]
