lib/asm/ast.ml: Format Pred32_isa
