(* Guideline audit: run the MISRA-C checker over the whole corpus and show
   how the checker's findings line up with WCET analyzability (the paper's
   Section 4.2 in one screen).

     dune exec examples/guideline_audit.exe *)

module Corpus = Wcet_corpus.Corpus
module Checker = Misra.Checker

let audit label (s : Corpus.scenario) =
  let tast = Minic.Compile.frontend_with_runtime ~options:s.Corpus.options s.Corpus.source in
  let violations =
    Checker.check tast
    |> List.filter (fun (v : Checker.violation) ->
           not (String.length v.Checker.func > 1 && String.sub v.Checker.func 0 2 = "__"))
  in
  Format.printf "%-24s: " label;
  if violations = [] then Format.printf "clean@."
  else begin
    Format.printf "@.";
    List.iter (fun v -> Format.printf "    %a@." Checker.pp_violation v) violations
  end

let () =
  Format.printf "== MISRA-C audit of the guideline-study corpus ==@.@.";
  List.iter
    (fun (e : Corpus.entry) ->
      audit (e.Corpus.id ^ " conforming") e.Corpus.conforming;
      audit (e.Corpus.id ^ " violating") e.Corpus.violating)
    Corpus.rule_entries;
  Format.printf "@.rule-by-rule WCET impact (the paper's analysis):@.";
  List.iter
    (fun rule ->
      Format.printf "  %-5s %s@." (Checker.rule_name rule) (Checker.wcet_impact rule))
    Checker.all_rules
