module Json = Wcet_diag.Json
module Diag = Wcet_diag.Diag

let default_max_frame = 1 lsl 20

type request = { id : Json.t; meth : string; params : Json.t; timeout_ms : int option }

type decode_error = Not_json of string | Malformed of string

let decode_request text =
  match Json.parse text with
  | Error msg -> Error (Not_json msg)
  | Ok json -> (
    match json with
    | Json.Obj _ -> (
      let id = Json.member "id" json in
      let meth = Option.bind (Json.member "method" json) Json.to_string_opt in
      let params = match Json.member "params" json with None -> Json.Obj [] | Some p -> p in
      match (id, meth, params) with
      | None, _, _ -> Error (Malformed "request has no id")
      | Some id, _, _ when Json.to_int_opt id = None && Json.to_string_opt id = None ->
        Error (Malformed "request id must be an integer or a string")
      | _, None, _ -> Error (Malformed "request has no method (or it is not a string)")
      | _, _, (Json.Obj _ as params) -> (
        match Json.member "timeout_ms" params with
        | None -> Ok { id = Option.get id; meth = Option.get meth; params; timeout_ms = None }
        | Some t -> (
          match Json.to_int_opt t with
          | Some ms when ms >= 0 ->
            Ok { id = Option.get id; meth = Option.get meth; params; timeout_ms = Some ms }
          | Some _ | None -> Error (Malformed "timeout_ms must be a non-negative integer")))
      | _, _, _ -> Error (Malformed "params must be an object"))
    | _ -> Error (Malformed "request frame must be a JSON object"))

let frame json = Json.to_string json ^ "\n"

let encode_request ?timeout_ms ~id ~meth params =
  let params =
    match (params, timeout_ms) with
    | p, None -> p
    | Json.Obj fields, Some ms -> Json.Obj (("timeout_ms", Json.Int ms) :: fields)
    | p, Some _ -> p
  in
  frame
    (Json.Obj [ ("id", id); ("method", Json.String meth); ("params", params) ])

let ok_reply ~id result = Json.Obj [ ("id", id); ("ok", Json.Bool true); ("result", result) ]

let error_reply ?retry_after_ms ~id diag =
  Json.Obj
    ([ ("id", id); ("ok", Json.Bool false); ("error", Diag.to_json diag) ]
    @ match retry_after_ms with None -> [] | Some ms -> [ ("retry_after_ms", Json.Int ms) ])

(* The deadline reply reuses the report schema: a Partial verdict with a
   typed hole, so clients that understand partial reports need no special
   case — the analysis simply has one more kind of excluded knowledge. *)
let deadline_reply ~id ~elapsed_ms =
  let diag =
    Diag.makef Diag.Warning Diag.Serve ~code:"D0703"
      ~hint:"raise timeout_ms or split the request"
      "deadline exceeded after %d ms; analysis cancelled" elapsed_ms
  in
  ok_reply ~id
    (Json.Obj
       [
         ("wcet", Json.Null);
         ("bcet", Json.Null);
         ("verdict", Json.String "partial");
         ( "holes",
           Json.List
             [
               Json.Obj
                 [
                   ("kind", Json.String "deadline-exceeded");
                   ("elapsed_ms", Json.Int elapsed_ms);
                 ];
             ] );
         ("diagnostics", Json.List [ Diag.to_json diag ]);
       ])

let event name fields = Json.Obj (("event", Json.String name) :: fields)

type reply = {
  reply_id : Json.t;
  ok : bool;
  result : Json.t option;
  error : Json.t option;
  retry_after_ms : int option;
}

let decode_reply text =
  match Json.parse text with
  | Error msg -> Error ("reply is not valid JSON: " ^ msg)
  | Ok json -> (
    match (Json.member "id" json, Option.bind (Json.member "ok" json) Json.to_bool_opt) with
    | Some id, Some ok ->
      Ok
        {
          reply_id = id;
          ok;
          result = Json.member "result" json;
          error = Json.member "error" json;
          retry_after_ms =
            Option.bind (Json.member "retry_after_ms" json) Json.to_int_opt;
        }
    | _ -> Error "frame is not a reply (no id/ok members)")

let error_code r =
  Option.bind r.error (fun e -> Option.bind (Json.member "code" e) Json.to_string_opt)

module Framer = struct
  type t = {
    max_frame : int;
    buf : Buffer.t;
    mutable discarding : bool;  (** past the limit: skip to the next newline *)
    mutable discarded : int;  (** bytes of the oversized frame seen so far *)
  }

  type item = Frame of string | Oversized of int

  let create ?(max_frame = default_max_frame) () =
    { max_frame; buf = Buffer.create 512; discarding = false; discarded = 0 }

  let feed t bytes len =
    let items = ref [] in
    for i = 0 to len - 1 do
      let c = Bytes.get bytes i in
      if t.discarding then begin
        if c = '\n' then begin
          items := Oversized t.discarded :: !items;
          t.discarding <- false;
          t.discarded <- 0
        end
        else t.discarded <- t.discarded + 1
      end
      else if c = '\n' then begin
        items := Frame (Buffer.contents t.buf) :: !items;
        Buffer.clear t.buf
      end
      else begin
        Buffer.add_char t.buf c;
        if Buffer.length t.buf > t.max_frame then begin
          t.discarding <- true;
          t.discarded <- Buffer.length t.buf;
          Buffer.clear t.buf
        end
      end
    done;
    List.rev !items

  let feed_string t s = feed t (Bytes.unsafe_of_string s) (String.length s)
end
