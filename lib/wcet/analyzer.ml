module Program = Pred32_asm.Program
module Hw_config = Pred32_hw.Hw_config
module Memory_map = Pred32_memory.Memory_map
module Supergraph = Wcet_cfg.Supergraph
module Func_cfg = Wcet_cfg.Func_cfg
module Loops = Wcet_cfg.Loops
module Resolver = Wcet_cfg.Resolver
module Aval = Wcet_value.Aval
module Analysis = Wcet_value.Analysis
module Loop_bounds = Wcet_value.Loop_bounds
module Resolve_iter = Wcet_value.Resolve_iter
module Cache_analysis = Wcet_cache.Cache_analysis
module Block_timing = Wcet_pipeline.Block_timing
module Ipet = Wcet_ipet.Ipet
module Annot = Wcet_annot.Annot

exception Analysis_error of string

let error fmt = Format.kasprintf (fun s -> raise (Analysis_error s)) fmt

type phase = Decode | Loop_value | Cache | Pipeline | Path

let phase_name = function
  | Decode -> "decoding / CFG reconstruction"
  | Loop_value -> "loop & value analysis"
  | Cache -> "cache analysis"
  | Pipeline -> "pipeline analysis"
  | Path -> "path analysis (IPET)"

type report = {
  program : Program.t;
  hw : Hw_config.t;
  graph : Supergraph.t;
  loops : Loops.info;
  value : Analysis.result;
  derived_bounds : Loop_bounds.t;
  effective_bounds : (int * int) list;
  unbounded_loops : (int * string) list;
  cache : Cache_analysis.result;
  timing : Block_timing.t;
  solution : Ipet.solution;
  wcet : int;
  bcet : int;
  phase_seconds : (phase * float) list;
}

let timed phases phase f =
  let t0 = Wcet_util.Mono_clock.now () in
  let result = f () in
  let dt = Wcet_util.Mono_clock.now () -. t0 in
  phases := (phase, dt) :: !phases;
  result

(* Translate the annotation set into a resolver. *)
let resolver_of_annot program (annot : Annot.t) =
  let call_targets =
    List.map
      (fun (site, names) ->
        let addrs =
          List.map
            (fun name ->
              match Program.find_function program name with
              | Some f -> f.Program.entry
              | None -> error "calltargets annotation: unknown function %s" name)
            names
        in
        (site, addrs))
      annot.Annot.call_targets
  in
  let jump_targets =
    if annot.Annot.setjmp_auto then begin
      let continuations = Resolver.scan_setjmp_continuations program in
      (* every indirect jump site may target any setjmp continuation *)
      Some continuations
    end
    else None
  in
  let base = Resolver.auto program in
  let base =
    Resolver.with_overrides ~call_targets ~recursion_depths:annot.Annot.recursion_depths base
  in
  match jump_targets with
  | None -> base
  | Some continuations ->
    {
      base with
      Resolver.jump_targets =
        (fun ~site ~block ->
          match base.Resolver.jump_targets ~site ~block with
          | Some t -> Some t
          | None -> if continuations = [] then None else Some continuations);
    }

let assumes_of_annot program (annot : Annot.t) =
  let user =
    List.map
      (fun (sym, lo, hi) ->
        match Program.symbol_opt program sym with
        | Some addr -> (addr, Aval.interval lo hi)
        | None -> error "assume annotation: unknown symbol %s" sym)
      annot.Annot.assumes
  in
  (* Compiler-runtime invariant: the heap bump pointer starts at its linked
     initial value. It is internal to the generated code - unlike user
     globals, no test harness pokes it - so treating the initializer as
     known is sound and keeps early heap blocks at known addresses. *)
  let runtime =
    match Program.symbol_opt program "__heap_ptr" with
    | Some addr ->
      [ (addr, Aval.const (Pred32_memory.Image.read_word program.Program.image addr)) ]
    | None -> []
  in
  runtime @ user

let region_hints_of_annot program (annot : Annot.t) func =
  match List.assoc_opt func annot.Annot.memory_regions with
  | None -> None
  | Some names ->
    Some
      (List.map
         (fun name ->
           match Memory_map.find_by_name program.Program.map name with
           | Some r -> r
           | None -> error "memory annotation: unknown region %s" name)
         names)

(* Nodes matching a place: block entries at an address, or entry blocks of a
   function (any context). *)
let nodes_of_place (graph : Supergraph.t) program place =
  match place with
  | Annot.At_addr addr ->
    Array.to_list graph.Supergraph.nodes
    |> List.filter_map (fun (n : Supergraph.node) ->
           if n.Supergraph.block.Func_cfg.entry = addr then Some n.Supergraph.id else None)
  | Annot.In_function name -> (
    match Program.find_function program name with
    | None -> error "annotation refers to unknown function %s" name
    | Some f ->
      Array.to_list graph.Supergraph.nodes
      |> List.filter_map (fun (n : Supergraph.node) ->
             if n.Supergraph.block.Func_cfg.entry = f.Program.entry then Some n.Supergraph.id
             else None))

let loop_matches_place (graph : Supergraph.t) program (loops : Loops.info) li place =
  let header = graph.Supergraph.nodes.(loops.Loops.loops.(li).Loops.header) in
  match place with
  | Annot.At_addr addr -> header.Supergraph.block.Func_cfg.entry = addr
  | Annot.In_function name ->
    ignore program;
    header.Supergraph.func = name

let facts_of_annot graph program (annot : Annot.t) =
  List.map
    (fun fact ->
      match fact with
      | Annot.Max_count (place, bound) ->
        {
          Ipet.fact_coeffs = List.map (fun n -> (n, 1)) (nodes_of_place graph program place);
          fact_bound = bound;
          fact_label =
            (match place with
            | Annot.At_addr a -> Printf.sprintf "maxcount at 0x%x" a
            | Annot.In_function f -> Printf.sprintf "maxcount %s" f);
        }
      | Annot.Exclusive places ->
        {
          Ipet.fact_coeffs =
            List.concat_map
              (fun p -> List.map (fun n -> (n, 1)) (nodes_of_place graph program p))
              places;
          fact_bound = 1;
          fact_label = "exclusive paths";
        })
    annot.Annot.flow_facts

(* Best-case bound: the shortest feasible walk from entry to a halting
   node, weighted by the optimistic per-block times. Weights are positive,
   so Dijkstra's shortest walk is a sound lower bound even through cycles
   (taking a cycle never shortens a walk). *)
let best_case_bound (value : Analysis.result) (timing : Block_timing.t) =
  let graph = value.Analysis.graph in
  let n = Array.length graph.Supergraph.nodes in
  let dist = Array.make n max_int in
  let visited = Array.make n false in
  let entry = graph.Supergraph.entry in
  dist.(entry) <- timing.Block_timing.bcet.(entry);
  let rec loop () =
    (* linear-scan Dijkstra: graphs are small *)
    let u = ref (-1) in
    for v = 0 to n - 1 do
      if (not visited.(v)) && dist.(v) < max_int && (!u < 0 || dist.(v) < dist.(!u)) then
        u := v
    done;
    if !u >= 0 then begin
      let u = !u in
      visited.(u) <- true;
      List.iter
        (fun (_, v) ->
          let w = dist.(u) + timing.Block_timing.bcet.(v) in
          if w < dist.(v) then dist.(v) <- w)
        (Analysis.feasible_successors value u);
      loop ()
    end
  in
  loop ();
  let best = ref max_int in
  for v = 0 to n - 1 do
    if dist.(v) < !best && Analysis.feasible_successors value v = [] then best := dist.(v)
  done;
  if !best = max_int then 0 else !best

let analyze ?(hw = Hw_config.default) ?(annot = Annot.empty)
    ?(strategy = Wcet_util.Fixpoint.Rpo) program =
  let phases = ref [] in
  let resolver = resolver_of_annot program annot in
  let assumes = assumes_of_annot program annot in
  let graph =
    timed phases Decode (fun () ->
        try Resolve_iter.build ~resolver ~assumes program
        with Supergraph.Build_error msg -> error "%s: %s" (phase_name Decode) msg)
  in
  let loops = Loops.analyze graph in
  let value, derived_bounds =
    timed phases Loop_value (fun () ->
        let value = Analysis.run ~strategy ~assumes graph loops in
        (value, Loop_bounds.analyze value loops))
  in
  (* Overlay annotation loop bounds on the derived verdicts. *)
  let effective_bounds = ref [] in
  let unbounded_loops = ref [] in
  Array.iteri
    (fun li verdict ->
      let annotated =
        List.filter_map
          (fun (place, bound) ->
            if loop_matches_place graph program loops li place then Some bound else None)
          annot.Annot.loop_bounds
      in
      let annotated = match annotated with [] -> None | bs -> Some (List.fold_left min max_int bs) in
      match (verdict, annotated) with
      | Loop_bounds.Bounded b, Some a -> effective_bounds := (li, min b a) :: !effective_bounds
      | Loop_bounds.Bounded b, None -> effective_bounds := (li, b) :: !effective_bounds
      | Loop_bounds.Unbounded _, Some a -> effective_bounds := (li, a) :: !effective_bounds
      | Loop_bounds.Unbounded reason, None ->
        (* Loops of unreachable code are irrelevant. *)
        if Analysis.reachable value loops.Loops.loops.(li).Loops.header then
          unbounded_loops := (li, reason) :: !unbounded_loops)
    derived_bounds.Loop_bounds.per_loop;
  let cache =
    timed phases Cache (fun () ->
        Cache_analysis.run ~strategy hw value ~region_hints:(region_hints_of_annot program annot))
  in
  let persistence =
    timed phases Cache (fun () -> Wcet_cache.Persistence.compute hw value loops cache)
  in
  let timing =
    timed phases Pipeline (fun () -> Block_timing.compute hw value cache ~persistence)
  in
  let facts = facts_of_annot graph program annot in
  let solution =
    timed phases Path (fun () ->
        match
          Ipet.solve
            {
              Ipet.value;
              times = timing.Block_timing.wcet;
              loop_bounds = !effective_bounds;
              facts;
            }
            loops
        with
        | Ok s -> s
        | Error msg ->
          let detail =
            !unbounded_loops
            |> List.map (fun (li, reason) ->
                   let hn = graph.Supergraph.nodes.(loops.Loops.loops.(li).Loops.header) in
                   Format.asprintf "  loop at 0x%x in %s: %s"
                     hn.Supergraph.block.Func_cfg.entry hn.Supergraph.func reason)
            |> String.concat "\n"
          in
          if detail = "" then error "%s: %s" (phase_name Path) msg
          else error "%s: %s\nunbounded loops:\n%s" (phase_name Path) msg detail)
  in
  {
    program;
    hw;
    graph;
    loops;
    value;
    derived_bounds;
    effective_bounds = !effective_bounds;
    unbounded_loops = !unbounded_loops;
    cache;
    timing;
    solution;
    wcet = solution.Ipet.wcet;
    bcet = best_case_bound value timing;
    phase_seconds = List.rev !phases;
  }

let analyze_modes ?(hw = Hw_config.default) ~base ~modes program =
  let oblivious = ("(all modes)", analyze ~hw ~annot:base program) in
  let per_mode =
    List.map
      (fun (name, annot) -> (name, analyze ~hw ~annot:(Annot.merge base annot) program))
      modes
  in
  oblivious :: per_mode

let pp_report ppf r =
  Format.fprintf ppf "@[<v>WCET bound: %d cycles (best-case bound: %d)@," r.wcet r.bcet;
  Format.fprintf ppf "graph: %d nodes, %d contexts, %d loops@,"
    (Array.length r.graph.Supergraph.nodes)
    (Array.length r.graph.Supergraph.contexts)
    (Array.length r.loops.Loops.loops);
  List.iter
    (fun (li, b) ->
      let hn = r.graph.Supergraph.nodes.(r.loops.Loops.loops.(li).Loops.header) in
      Format.fprintf ppf "loop at 0x%x in %s: bound %d@," hn.Supergraph.block.Func_cfg.entry
        hn.Supergraph.func b)
    r.effective_bounds;
  List.iter
    (fun (phase, dt) -> Format.fprintf ppf "%s: %.1f ms@," (phase_name phase) (dt *. 1000.))
    r.phase_seconds;
  Format.fprintf ppf "@]"
