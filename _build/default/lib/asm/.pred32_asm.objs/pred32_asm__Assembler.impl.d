lib/asm/assembler.ml: Ast Format Hashtbl List Pred32_isa Pred32_memory Program
