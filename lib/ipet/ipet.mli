(** Path analysis (Figure 1's final phase) by implicit path enumeration.

    Encodes the feasible supergraph as a flow network — one variable per
    edge, conservation at every node, one unit of flow from the entry to the
    halting nodes — and maximizes total time. Loop bounds become linear
    constraints relating back-edge and entry-edge flow; annotation flow
    facts (execution-count limits, mutual exclusions) are additional linear
    constraints, which is how irreducible regions and error paths get
    bounded when automatic loop analysis cannot help.

    Linear chains are collapsed before the ILP is built, which keeps the
    exact solver fast. *)

(** The spec/solution types are the shared {!Wcet_path.Path_analysis} ones
    (re-exported with equations so existing field accesses keep working):
    IPET is one backend behind the common interface. *)

type fact = Wcet_path.Path_analysis.fact = {
  fact_coeffs : (int * int) list;  (** (node id, coefficient) *)
  fact_bound : int;  (** sum of coef * count(node) <= bound per run *)
  fact_label : string;  (** for error messages *)
}

type spec = Wcet_path.Path_analysis.spec = {
  value : Wcet_value.Analysis.result;
  times : int array;  (** per node id, upper bound cycles *)
  loop_bounds : (int * int) list;  (** (loop index, back-edge bound) *)
  facts : fact list;
}

type solution = Wcet_path.Path_analysis.solution = {
  wcet : int;
  node_counts : int array;  (** worst-case path execution counts per node *)
}

(** Backend metadata for the portfolio driver ({!Wcet_path.Portfolio}). *)

val name : string

val path_sensitive : bool
val fact_blind : bool
val exact_witness : bool

(** [solve spec loops] returns a typed [Error] when the flow is unbounded
    (E0301 — some cycle has no bound, the analysis-failure outcome the
    paper associates with rules 14.4/16.2/20.7) or infeasible (E0302 —
    contradictory flow facts). The solution always satisfies
    sum(count*time) = wcet, with fractional LP vertices (possible once
    weighted flow facts break total unimodularity) repaired by rounding
    every edge count up; a violation is reported as E0304 rather than
    silently corrupting downstream attribution. *)
val solve :
  spec -> Wcet_cfg.Loops.info -> (solution, Wcet_path.Path_analysis.error) result
