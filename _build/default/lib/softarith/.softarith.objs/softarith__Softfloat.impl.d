lib/softarith/softfloat.ml: Int32
